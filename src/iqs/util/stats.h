// Small statistics toolkit used by the property-based tests and by the
// independence experiments (DESIGN.md E11): chi-square goodness of fit,
// Pearson correlation, and summary statistics.

#ifndef IQS_UTIL_STATS_H_
#define IQS_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace iqs {

// Result of a chi-square goodness-of-fit test.
struct ChiSquareResult {
  double statistic = 0.0;
  int64_t degrees_of_freedom = 0;
  // P(X >= statistic) under the chi-square null; small values reject.
  double p_value = 1.0;
};

// Chi-square goodness-of-fit of `observed` counts against category
// probabilities `expected_probs` (which must sum to ~1). Categories whose
// expected count falls below 5 are merged into their neighbour, the
// standard validity fix.
ChiSquareResult ChiSquareGoodnessOfFit(const std::vector<uint64_t>& observed,
                                       const std::vector<double>& expected_probs);

// Regularized upper incomplete gamma Q(a, x) = Γ(a, x) / Γ(a).
// Used for chi-square p-values: p = Q(dof / 2, stat / 2).
double RegularizedGammaQ(double a, double x);

// Pearson correlation coefficient of two equal-length series.
// Returns 0 for degenerate (constant) series.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

double Mean(const std::vector<double>& x);
double Variance(const std::vector<double>& x);  // population variance

}  // namespace iqs

#endif  // IQS_UTIL_STATS_H_
