#include "iqs/util/telemetry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "iqs/simd/dispatch.h"

namespace iqs {

void QueryStats::MergeFrom(const QueryStats& other) {
  queries += other.queries;
  samples_emitted += other.samples_emitted;
  rng_draws += other.rng_draws;
  nodes_visited += other.nodes_visited;
  cover_groups += other.cover_groups;
  rejection_attempts += other.rejection_attempts;
  rejection_rounds += other.rejection_rounds;
  arena_bytes_hwm = std::max(arena_bytes_hwm, other.arena_bytes_hwm);
  em_reads += other.em_reads;
  em_writes += other.em_writes;
  steals += other.steals;
  busy_ns += other.busy_ns;
  versions_published += other.versions_published;
  versions_reclaimed += other.versions_reclaimed;
  reader_pins += other.reader_pins;
  rebuild_ns += other.rebuild_ns;
  backend_mask |= other.backend_mask;
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  for (size_t b = 0; b < kNumBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
  max_ns_ = std::max(max_ns_, other.max_ns_);
}

uint64_t LatencyHistogram::PercentileUpperBoundNs(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets_[b];
    if (static_cast<double>(cumulative) >= target && cumulative > 0) {
      // Exclusive upper bound of bucket b = lower bound of bucket b + 1;
      // the last bucket's bound saturates.
      return b + 1 < kNumBuckets ? BucketLowerBoundNs(b + 1) : ~uint64_t{0};
    }
  }
  return max_ns_;
}

QueryStats TelemetrySink::MergedStats() const {
  QueryStats merged;
  for (const TelemetryShard& shard : shards_) merged.MergeFrom(shard.stats);
  return merged;
}

LatencyHistogram TelemetrySink::MergedLatency() const {
  LatencyHistogram merged;
  for (const TelemetryShard& shard : shards_) merged.MergeFrom(shard.latency);
  return merged;
}

void TelemetrySink::Reset() {
  for (TelemetryShard& shard : shards_) shard = TelemetryShard{};
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

TelemetrySink* MetricsRegistry::GetOrCreate(std::string_view name,
                                            size_t num_shards) {
  MutexLock lock(&mu_);
  for (auto& [sink_name, sink] : sinks_) {
    if (sink_name == name) return sink.get();
  }
  sinks_.emplace_back(std::string(name),
                      std::make_unique<TelemetrySink>(num_shards));
  return sinks_.back().second.get();
}

TelemetrySink* MetricsRegistry::Find(std::string_view name) {
  MutexLock lock(&mu_);
  for (auto& [sink_name, sink] : sinks_) {
    if (sink_name == name) return sink.get();
  }
  return nullptr;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(&mu_);
  for (auto& [name, sink] : sinks_) sink->Reset();
}

namespace {

void AppendF(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* format, ...) {
  // Sized for the worst-case counters line: every uint64 at 20 digits.
  char buffer[2048];
  va_list args;
  va_start(args, format);
  const int written = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (written > 0) out->append(buffer, static_cast<size_t>(written));
}

void AppendCountersJson(std::string* out, const QueryStats& stats) {
  AppendF(out,
          "{\"queries\": %" PRIu64 ", \"samples_emitted\": %" PRIu64
          ", \"rng_draws\": %" PRIu64 ", \"nodes_visited\": %" PRIu64
          ", \"cover_groups\": %" PRIu64 ", \"rejection_attempts\": %" PRIu64
          ", \"rejection_rounds\": %" PRIu64 ", \"arena_bytes_hwm\": %" PRIu64
          ", \"em_reads\": %" PRIu64 ", \"em_writes\": %" PRIu64
          ", \"steals\": %" PRIu64 ", \"busy_ns\": %" PRIu64
          ", \"versions_published\": %" PRIu64
          ", \"versions_reclaimed\": %" PRIu64 ", \"reader_pins\": %" PRIu64
          ", \"rebuild_ns\": %" PRIu64 ", \"kernel_backend\": \"%s\"}",
          stats.queries, stats.samples_emitted, stats.rng_draws,
          stats.nodes_visited, stats.cover_groups, stats.rejection_attempts,
          stats.rejection_rounds, stats.arena_bytes_hwm, stats.em_reads,
          stats.em_writes, stats.steals, stats.busy_ns,
          stats.versions_published, stats.versions_reclaimed,
          stats.reader_pins, stats.rebuild_ns,
          std::string(simd::BackendMaskName(stats.backend_mask)).c_str());
}

void AppendLatencyJson(std::string* out, const LatencyHistogram& histogram) {
  AppendF(out,
          "{\"count\": %" PRIu64 ", \"sum_ns\": %" PRIu64 ", \"max_ns\": %" PRIu64
          ", \"p50_ns\": %" PRIu64 ", \"p90_ns\": %" PRIu64
          ", \"p99_ns\": %" PRIu64 ", \"p999_ns\": %" PRIu64
          ", \"p9999_ns\": %" PRIu64 ", \"buckets\": [",
          histogram.count(), histogram.sum_ns(), histogram.max_ns(),
          histogram.PercentileUpperBoundNs(0.50),
          histogram.PercentileUpperBoundNs(0.90),
          histogram.PercentileUpperBoundNs(0.99),
          histogram.PercentileUpperBoundNs(0.999),
          histogram.PercentileUpperBoundNs(0.9999));
  // Nonzero buckets only, as [lower_bound_ns, count] pairs.
  bool first = true;
  for (size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    if (histogram.bucket(b) == 0) continue;
    AppendF(out, "%s[%" PRIu64 ", %" PRIu64 "]", first ? "" : ", ",
            LatencyHistogram::BucketLowerBoundNs(b), histogram.bucket(b));
    first = false;
  }
  out->append("]}");
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\"telemetry\": {";
  bool first = true;
  for (const auto& [name, sink] : sinks_) {
    AppendF(&out, "%s\"%s\": {\"counters\": ", first ? "" : ", ",
            name.c_str());
    AppendCountersJson(&out, sink->MergedStats());
    out.append(", \"latency_ns\": ");
    AppendLatencyJson(&out, sink->MergedLatency());
    out.append("}");
    first = false;
  }
  out.append("}}");
  return out;
}

std::string MetricsRegistry::ToText() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const auto& [name, sink] : sinks_) {
    const QueryStats stats = sink->MergedStats();
    const LatencyHistogram latency = sink->MergedLatency();
    AppendF(&out,
            "%s: queries=%" PRIu64 " samples=%" PRIu64 " rng_draws=%" PRIu64
            " nodes=%" PRIu64 " groups=%" PRIu64 " rej_attempts=%" PRIu64
            " rej_rounds=%" PRIu64 " arena_hwm=%" PRIu64 " em_r=%" PRIu64
            " em_w=%" PRIu64 " steals=%" PRIu64 " busy_ns=%" PRIu64
            " published=%" PRIu64 " reclaimed=%" PRIu64 " pins=%" PRIu64
            " rebuild_ns=%" PRIu64 " backend=%s\n",
            name.c_str(), stats.queries, stats.samples_emitted,
            stats.rng_draws, stats.nodes_visited, stats.cover_groups,
            stats.rejection_attempts, stats.rejection_rounds,
            stats.arena_bytes_hwm, stats.em_reads, stats.em_writes,
            stats.steals, stats.busy_ns, stats.versions_published,
            stats.versions_reclaimed, stats.reader_pins, stats.rebuild_ns,
            std::string(simd::BackendMaskName(stats.backend_mask)).c_str());
    AppendF(&out,
            "%s: latency count=%" PRIu64 " mean_ns=%" PRIu64
            " p50<=%" PRIu64 " p90<=%" PRIu64 " p99<=%" PRIu64
            " p999<=%" PRIu64 " p9999<=%" PRIu64 " max=%" PRIu64 "\n",
            name.c_str(), latency.count(),
            latency.count() ? latency.sum_ns() / latency.count() : 0,
            latency.PercentileUpperBoundNs(0.50),
            latency.PercentileUpperBoundNs(0.90),
            latency.PercentileUpperBoundNs(0.99),
            latency.PercentileUpperBoundNs(0.999),
            latency.PercentileUpperBoundNs(0.9999), latency.max_ns());
  }
  return out;
}

}  // namespace iqs
