#include "iqs/util/distributions.h"

#include <algorithm>
#include <cmath>

#include "iqs/util/check.h"

namespace iqs {

// ---------------------------------------------------------------------------
// ZipfDistribution (rejection inversion, Hormann & Derflinger 1996).
// ---------------------------------------------------------------------------

ZipfDistribution::ZipfDistribution(uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  IQS_CHECK(n >= 1);
  IQS_CHECK(alpha > 0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -alpha));
}

double ZipfDistribution::H(double x) const {
  // Integral of t^-alpha: (x^(1-alpha) - 1) / (1 - alpha), continuous at
  // alpha == 1 where it becomes log(x).
  const double one_minus = 1.0 - alpha_;
  if (std::abs(one_minus) < 1e-12) return std::log(x);
  return (std::pow(x, one_minus) - 1.0) / one_minus;
}

double ZipfDistribution::HInverse(double x) const {
  const double one_minus = 1.0 - alpha_;
  if (std::abs(one_minus) < 1e-12) return std::exp(x);
  return std::pow(1.0 + one_minus * x, 1.0 / one_minus);
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  if (n_ == 1) return 1;
  while (true) {
    const double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    k = std::clamp<uint64_t>(k, 1, n_);
    const double dk = static_cast<double>(k);
    if (dk - x <= s_ || u >= H(dk + 0.5) - std::pow(dk, -alpha_)) {
      return k;
    }
  }
}

// ---------------------------------------------------------------------------
// Key / weight / query generators.
// ---------------------------------------------------------------------------

namespace {

// Sorts, deduplicates, and if necessary tops up `keys` until it has exactly
// n distinct values.
std::vector<double> FinalizeDistinctSorted(std::vector<double> keys, size_t n,
                                           Rng* rng) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  while (keys.size() < n) {
    keys.push_back(rng->NextDouble());
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  }
  keys.resize(n);
  return keys;
}

double GaussianSample(Rng* rng, double mean, double stddev) {
  // Box-Muller; one value per call is fine for offline generation.
  const double u1 = std::max(rng->NextDouble(), 1e-300);
  const double u2 = rng->NextDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

}  // namespace

std::vector<double> UniformKeys(size_t n, Rng* rng) {
  std::vector<double> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back(rng->NextDouble());
  return FinalizeDistinctSorted(std::move(keys), n, rng);
}

std::vector<double> ClusteredKeys(size_t n, size_t clusters, Rng* rng) {
  IQS_CHECK(clusters >= 1);
  std::vector<double> centers;
  centers.reserve(clusters);
  for (size_t c = 0; c < clusters; ++c) centers.push_back(rng->NextDouble());
  std::vector<double> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double center = centers[rng->Below(clusters)];
    keys.push_back(GaussianSample(rng, center, 0.01));
  }
  return FinalizeDistinctSorted(std::move(keys), n, rng);
}

std::vector<double> ZipfWeights(size_t n, double alpha, Rng* rng) {
  std::vector<double> weights(n, 1.0);
  if (alpha > 0) {
    for (size_t i = 0; i < n; ++i) {
      weights[i] = std::pow(static_cast<double>(i + 1), -alpha);
    }
    // Shuffle so weight magnitude is uncorrelated with key order.
    for (size_t i = n; i > 1; --i) {
      std::swap(weights[i - 1], weights[rng->Below(i)]);
    }
  }
  return weights;
}

std::pair<double, double> IntervalWithSelectivity(
    const std::vector<double>& keys, size_t result_size, Rng* rng) {
  const size_t n = keys.size();
  IQS_CHECK(result_size >= 1 && result_size <= n);
  const size_t start = rng->Below(n - result_size + 1);
  const size_t end = start + result_size - 1;  // inclusive index
  // Query endpoints strictly between neighbouring keys so exactly
  // keys[start..end] fall inside.
  const double lo =
      start == 0 ? keys[0] - 1.0 : (keys[start - 1] + keys[start]) / 2.0;
  const double hi =
      end + 1 == n ? keys[n - 1] + 1.0 : (keys[end] + keys[end + 1]) / 2.0;
  return {lo, hi};
}

std::vector<std::pair<double, double>> Points2D(size_t n, size_t clusters,
                                                Rng* rng) {
  std::vector<std::pair<double, double>> pts;
  pts.reserve(n);
  if (clusters == 0) {
    for (size_t i = 0; i < n; ++i) {
      pts.emplace_back(rng->NextDouble(), rng->NextDouble());
    }
    return pts;
  }
  std::vector<std::pair<double, double>> centers;
  centers.reserve(clusters);
  for (size_t c = 0; c < clusters; ++c) {
    centers.emplace_back(rng->NextDouble(), rng->NextDouble());
  }
  for (size_t i = 0; i < n; ++i) {
    const auto& center = centers[rng->Below(clusters)];
    pts.emplace_back(GaussianSample(rng, center.first, 0.02),
                     GaussianSample(rng, center.second, 0.02));
  }
  return pts;
}

}  // namespace iqs
