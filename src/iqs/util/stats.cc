#include "iqs/util/stats.h"

#include <algorithm>
#include <cmath>

#include "iqs/util/check.h"

namespace iqs {

namespace {

// ln Γ(a) via Lanczos approximation (g = 7, n = 9 coefficients).
double LogGamma(double a) {
  static const double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (a < 0.5) {
    // Reflection formula.
    return std::log(3.14159265358979323846 /
                    std::sin(3.14159265358979323846 * a)) -
           LogGamma(1.0 - a);
  }
  a -= 1.0;
  double x = kCoef[0];
  for (int i = 1; i < 9; ++i) x += kCoef[i] / (a + i);
  const double t = a + 7.5;
  return 0.5 * std::log(2.0 * 3.14159265358979323846) +
         (a + 0.5) * std::log(t) - t + std::log(x);
}

// Lower regularized gamma P(a, x) by series expansion; valid for x < a + 1.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 1000; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Upper regularized gamma Q(a, x) by continued fraction; valid x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 1000; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - LogGamma(a));
}

}  // namespace

double RegularizedGammaQ(double a, double x) {
  IQS_CHECK(a > 0);
  if (x <= 0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

ChiSquareResult ChiSquareGoodnessOfFit(
    const std::vector<uint64_t>& observed,
    const std::vector<double>& expected_probs) {
  IQS_CHECK(observed.size() == expected_probs.size());
  IQS_CHECK(!observed.empty());
  uint64_t total = 0;
  for (uint64_t count : observed) total += count;
  IQS_CHECK(total > 0);

  // Merge categories until every expected count is >= 5.
  std::vector<double> exp_counts;
  std::vector<double> obs_counts;
  double pending_exp = 0.0;
  double pending_obs = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    pending_exp += expected_probs[i] * static_cast<double>(total);
    pending_obs += static_cast<double>(observed[i]);
    if (pending_exp >= 5.0) {
      exp_counts.push_back(pending_exp);
      obs_counts.push_back(pending_obs);
      pending_exp = pending_obs = 0.0;
    }
  }
  if (pending_exp > 0.0 || pending_obs > 0.0) {
    if (exp_counts.empty()) {
      exp_counts.push_back(pending_exp);
      obs_counts.push_back(pending_obs);
    } else {
      exp_counts.back() += pending_exp;
      obs_counts.back() += pending_obs;
    }
  }

  ChiSquareResult result;
  result.degrees_of_freedom = static_cast<int64_t>(exp_counts.size()) - 1;
  for (size_t i = 0; i < exp_counts.size(); ++i) {
    const double diff = obs_counts[i] - exp_counts[i];
    if (exp_counts[i] > 0) result.statistic += diff * diff / exp_counts[i];
  }
  if (result.degrees_of_freedom <= 0) {
    result.p_value = 1.0;
  } else {
    result.p_value = RegularizedGammaQ(
        static_cast<double>(result.degrees_of_freedom) / 2.0,
        result.statistic / 2.0);
  }
  return result;
}

double Mean(const std::vector<double>& x) {
  IQS_CHECK(!x.empty());
  double sum = 0.0;
  for (double v : x) sum += v;
  return sum / static_cast<double>(x.size());
}

double Variance(const std::vector<double>& x) {
  const double mean = Mean(x);
  double sum = 0.0;
  for (double v : x) sum += (v - mean) * (v - mean);
  return sum / static_cast<double>(x.size());
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  IQS_CHECK(x.size() == y.size());
  IQS_CHECK(!x.empty());
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace iqs
