// Serving telemetry: zero-overhead-when-off counters and latency
// histograms for the batched query-serving pipeline.
//
// Design (mirrors the threading model of DESIGN.md section 2.5):
//
//   * A TelemetrySink owns an array of per-worker TelemetryShards. Hot
//     paths receive an optional `TelemetrySink*` through BatchOptions and
//     guard every recording site with ONE null check — with no sink
//     attached the serving pipeline executes exactly the uninstrumented
//     instruction stream (bench_telemetry / E22 keeps the disabled-mode
//     cost under 2% of E19). There are NO atomics anywhere: during a
//     parallel batch each worker writes only its own shard (worker 0 is
//     the calling thread, as in ThreadPool), and shards are merged only
//     after the batch joins, by the reader.
//
//   * Recording NEVER touches an Rng. Attaching a sink must not perturb
//     any sample stream — parallel_batch_test pins byte-identity across
//     thread counts with a sink attached.
//
// Counter ownership (each event is counted at exactly one layer, so
// nested pipelines — e.g. CoverageEngine serving through the chunked
// sampler — do not double-count):
//
//   queries, cover_groups   the outermost CoverExecutor split stage of a
//                           batch (Split / ExecuteParallel); nested
//                           QueryPositionsBatch calls made by a backend
//                           run without a sink.
//   samples_emitted         the executor draw stage (Execute /
//                           ExecuteOverSampler / ExecuteParallel) and the
//                           manual-serve QueryBatch paths (range trees,
//                           logarithmic) that split via CoverExecutor but
//                           own their draw loops.
//   rng_draws               randomness words requested by the cover
//                           pipeline itself: multinomial budget splits
//                           (s draws per query with >= 2 groups) and
//                           parallel batch keys. Backend-internal draws
//                           (tree descents, alias picks) are not counted.
//   nodes_visited           lane-level steps of StaticBst's grouped
//                           descent kernel (lanes x levels) — the node
//                           loads that dominate the 1-d hot path.
//   rejection_attempts      candidate positions tested by
//                           CoverageEngine::SampleWithRejection; equals
//                           the number of `accepts` invocations
//                           (cross-checked in telemetry_test).
//   rejection_rounds        retry rounds of the same loop.
//   arena_bytes_hwm         high-water ScratchArena capacity observed at
//                           the executor (max, not sum).
//   em_reads / em_writes    em::BlockDevice I/Os when a device has a sink
//                           attached; equals the device's own counters.
//   steals / busy_ns        ThreadPool: shards claimed from another
//                           worker's deque, and per-worker wall time
//                           inside shard bodies (only measured when a
//                           sink is attached — the clock is never read
//                           otherwise).
//   versions_published /    the serialized writer path of an epoch-
//   versions_reclaimed /    versioned structure (util/epoch.h): versions
//   reader_pins /           swapped in / freed after grace, reader
//   rebuild_ns              snapshot pins, and off-read-path rebuild wall
//                           time (timed only when the structure has a
//                           sink attached — the clock is never read
//                           otherwise). Writer-recorded into shard 0 of
//                           the STRUCTURE's own sink, so reader-side
//                           batch recording must use a different sink.
//
// Latency histograms are log-bucketed (bucket b holds [2^(b-1), 2^b) ns)
// and merge by bucket-wise addition, which is associative and
// commutative — shard merge order cannot change the result
// (telemetry_test pins this). QueryBatch-style entry points record one
// `latency` sample per batch call into shard 0.
//
// A MetricsRegistry is a named collection of sinks with a text/JSON
// exporter (schema in README "Observability"); bench binaries attach
// registry sinks and dump the registry next to their timing JSON so
// bench/export_bench_json.sh collects both.

#ifndef IQS_UTIL_TELEMETRY_H_
#define IQS_UTIL_TELEMETRY_H_

#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "iqs/util/check.h"
#include "iqs/util/thread_annotations.h"

namespace iqs {

// Additive counters of one serving shard. Plain uint64 adds on the owning
// worker's shard; merged after the batch joins.
struct QueryStats {
  uint64_t queries = 0;
  uint64_t samples_emitted = 0;
  uint64_t rng_draws = 0;
  uint64_t nodes_visited = 0;
  uint64_t cover_groups = 0;
  uint64_t rejection_attempts = 0;
  uint64_t rejection_rounds = 0;
  uint64_t arena_bytes_hwm = 0;  // max-merged, not summed
  uint64_t em_reads = 0;
  uint64_t em_writes = 0;
  uint64_t steals = 0;
  uint64_t busy_ns = 0;
  // Epoch/snapshot publication layer (iqs/util/epoch.h): versions
  // published / reclaimed by the versioned samplers, reader snapshot pins,
  // and wall time spent rebuilding components off the read path. Recorded
  // by the writer path of a versioned structure into ITS sink's shard 0
  // (the structure's writers are serialized, so plain adds stay race-free;
  // give each versioned structure a sink of its own).
  uint64_t versions_published = 0;
  uint64_t versions_reclaimed = 0;
  uint64_t reader_pins = 0;
  uint64_t rebuild_ns = 0;
  // OR of simd::BackendBit(simd::ActiveBackend()) per recorded batch, so
  // exported results say which kernel backend(s) produced them (merged by
  // bitwise OR; exporters render it via simd::BackendMaskName).
  uint64_t backend_mask = 0;

  void MergeFrom(const QueryStats& other);
  bool operator==(const QueryStats&) const = default;
};

// Log-bucketed latency histogram: bucket 0 holds {0}, bucket b >= 1 holds
// [2^(b-1), 2^b) ns; 65 buckets cover the full uint64 range. Merging adds
// bucket counts, so any grouping of shard merges yields the same result.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 65;

  void Record(uint64_t ns) {
    ++buckets_[BucketOf(ns)];
    ++count_;
    sum_ns_ += ns;
    if (ns > max_ns_) max_ns_ = ns;
  }

  void MergeFrom(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum_ns() const { return sum_ns_; }
  uint64_t max_ns() const { return max_ns_; }
  uint64_t bucket(size_t b) const {
    IQS_DCHECK(b < kNumBuckets);
    return buckets_[b];
  }

  // Upper bound (exclusive, in ns) of the smallest bucket whose
  // cumulative count reaches fraction `p` of all recordings; 0 when
  // empty. An upper BOUND because bucket resolution is a power of two.
  uint64_t PercentileUpperBoundNs(double p) const;

  static size_t BucketOf(uint64_t ns) {
    return static_cast<size_t>(std::bit_width(ns));
  }
  static uint64_t BucketLowerBoundNs(size_t b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }

  void Reset() { *this = LatencyHistogram{}; }

  bool operator==(const LatencyHistogram&) const = default;

 private:
  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ns_ = 0;
  uint64_t max_ns_ = 0;
};

// One worker's slice of a sink. Cacheline-aligned so two workers'
// recording never false-shares.
struct alignas(64) TelemetryShard {
  QueryStats stats;
  LatencyHistogram latency;
};

// The handle threaded through BatchOptions. Per-worker shards; no
// atomics; merge after join. Worker w of a parallel batch writes
// shard(w); every sequential path writes shard(0).
class TelemetrySink {
 public:
  // Must cover the largest worker count the sink will ever see; the
  // default comfortably exceeds ThreadPool sizes in this library.
  static constexpr size_t kDefaultShards = 64;

  explicit TelemetrySink(size_t num_shards = kDefaultShards)
      : shards_(num_shards) {
    IQS_CHECK(num_shards >= 1);
  }

  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  size_t num_shards() const { return shards_.size(); }

  TelemetryShard* shard(size_t worker) {
    IQS_DCHECK(worker < shards_.size());
    return &shards_[worker];
  }
  const TelemetryShard& shard(size_t worker) const {
    IQS_DCHECK(worker < shards_.size());
    return shards_[worker];
  }

  // Shard-merged views. Only call after every batch recording into this
  // sink has joined (no concurrent writers).
  QueryStats MergedStats() const;
  LatencyHistogram MergedLatency() const;

  void Reset();

 private:
  std::vector<TelemetryShard> shards_;
};

// Monotonic nanosecond clock for latency recording. Call sites must gate
// on a non-null sink so the disabled mode never reads the clock.
inline uint64_t TelemetryNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Named sinks plus an exporter. GetOrCreate is mutex-guarded (sinks
// register once per component, off the hot path); recording goes straight
// to the returned sink and never touches the registry. Export only when
// no batch is in flight.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide convenience instance.
  static MetricsRegistry& Global();

  // Returns the sink registered under `name`, creating it on first use.
  // The pointer stays valid for the registry's lifetime.
  TelemetrySink* GetOrCreate(std::string_view name,
                             size_t num_shards = TelemetrySink::kDefaultShards);

  // Returns the sink registered under `name`, or nullptr.
  TelemetrySink* Find(std::string_view name);

  void ResetAll();

  // JSON object {"telemetry": {"<name>": {"counters": {...},
  // "latency_ns": {...}}}}; schema documented in README "Observability".
  std::string ToJson() const;

  // Human-readable table of the same content.
  std::string ToText() const;

 private:
  mutable Mutex mu_;
  // Insertion-ordered so exports are stable.
  std::vector<std::pair<std::string, std::unique_ptr<TelemetrySink>>> sinks_
      IQS_GUARDED_BY(mu_);
};

}  // namespace iqs

#endif  // IQS_UTIL_TELEMETRY_H_
