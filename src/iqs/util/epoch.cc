#include "iqs/util/epoch.h"

#include <thread>

#include "iqs/util/thread_pool.h"

namespace iqs {

EpochManager::~EpochManager() {
  // No reader may outlive the manager; a still-claimed slot here is a
  // guard leak in the caller.
  for (const Slot& slot : slots_) {
    // iqs-lint: allow(check-in-loop) -- dtor leak check, once per manager
    IQS_CHECK(slot.state.load(std::memory_order_acquire) == 0);
  }
  // Uncontended by definition here; taken so the limbo_ guard invariant
  // holds in every function, destructor included.
  MutexLock lock(&mu_);
  for (std::vector<Retired>& list : limbo_) {
    for (const Retired& retired : list) retired.deleter(retired.p);
    list.clear();
  }
}

size_t EpochManager::EnterReader() {
  // Spread threads over the slot array so steady-state readers claim an
  // uncontended slot with one CAS. thread::id hashing is stable per
  // thread, so a reader thread keeps hitting "its" slot.
  const size_t start =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kNumSlots;
  while (true) {
    for (size_t i = 0; i < kNumSlots; ++i) {
      Slot& slot = slots_[(start + i) % kNumSlots];
      uint64_t expected = 0;
      // The pinned epoch may be stale by the time the CAS lands (a writer
      // advanced in between); that is safe — an old pin only delays
      // reclamation, never permits it.
      const uint64_t pin =
          (epoch_.load(std::memory_order_seq_cst) << 1) | uint64_t{1};
      if (slot.state.compare_exchange_strong(expected, pin,
                                             std::memory_order_seq_cst)) {
        slot.pins.fetch_add(1, std::memory_order_relaxed);
        return (start + i) % kNumSlots;
      }
    }
    // All slots claimed (more than kNumSlots concurrent pins): wait for
    // one to free. Pins are batch-scoped, so this resolves quickly.
    std::this_thread::yield();
  }
}

void EpochManager::ExitReader(size_t slot) {
  IQS_DCHECK(slot < kNumSlots);
  IQS_DCHECK(slots_[slot].state.load(std::memory_order_relaxed) != 0);
  slots_[slot].state.store(0, std::memory_order_release);
}

uint64_t EpochManager::reader_pins() const {
  uint64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.pins.load(std::memory_order_relaxed);
  }
  return total;
}

void EpochManager::Retire(void* p, void (*deleter)(void*)) {
  IQS_DCHECK(p != nullptr && deleter != nullptr);
  MutexLock lock(&mu_);
  const uint64_t e = epoch_.load(std::memory_order_relaxed);
  limbo_[e % 3].push_back(Retired{p, deleter});
  pending_.fetch_add(1, std::memory_order_relaxed);
}

bool EpochManager::TryAdvanceLocked(std::vector<Retired>* expired) {
  const uint64_t e = epoch_.load(std::memory_order_relaxed);
  // The epoch may advance only once every ACTIVE reader has pinned the
  // current epoch: a slot still pinning e-1 (or older) could hold a
  // version retired two epochs back, so the advance — and with it the
  // freeing of that limbo list — must wait. Slot loads are seq_cst to
  // order against the readers' pin-then-load-root sequence.
  for (const Slot& slot : slots_) {
    const uint64_t state = slot.state.load(std::memory_order_seq_cst);
    if (state != 0 && (state >> 1) != e) return false;
  }
  const uint64_t next = e + 1;
  epoch_.store(next, std::memory_order_seq_cst);
  // Objects retired in epoch `next - 2` are now out of every possible
  // reader's reach: advancing to `next` proved no reader still pins
  // `next - 1` or older... strictly, each of the last two advances proved
  // one generation of readers drained (full argument: DESIGN.md §2.7).
  std::vector<Retired>& list = limbo_[(next + 1) % 3];
  expired->insert(expired->end(), list.begin(), list.end());
  list.clear();
  return true;
}

void EpochManager::RunDeleters(std::vector<Retired>* expired,
                               ThreadPool* pool) {
  if (expired->empty()) return;
  if (pool != nullptr && pool->num_threads() > 1 && expired->size() > 1) {
    // Free retired versions on the pool so a serving/writer thread never
    // pays for a large component teardown.
    pool->ParallelFor(expired->size(), [expired](size_t shard, size_t) {
      const Retired& retired = (*expired)[shard];
      retired.deleter(retired.p);
    });
  } else {
    for (const Retired& retired : *expired) retired.deleter(retired.p);
  }
  pending_.fetch_sub(expired->size(), std::memory_order_relaxed);
  reclaimed_.fetch_add(expired->size(), std::memory_order_relaxed);
  expired->clear();
}

size_t EpochManager::Reclaim(ThreadPool* pool) {
  std::vector<Retired> expired;
  {
    MutexLock lock(&mu_);
    if (pending_.load(std::memory_order_relaxed) == 0) return 0;
    // Up to three advances fully drain the limbo ring when no reader
    // holds an old pin; stop at the first blocked advance.
    for (int i = 0; i < 3; ++i) {
      if (!TryAdvanceLocked(&expired)) break;
      if (pending_.load(std::memory_order_relaxed) ==
          expired.size()) {
        break;  // everything retired is already collected
      }
    }
  }
  const size_t freed = expired.size();
  // Deleters run outside mu_: readers are unaffected either way, but this
  // keeps Retire() from other writers responsive during a big teardown.
  RunDeleters(&expired, pool);
  return freed;
}

void EpochManager::Drain(ThreadPool* pool) {
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (Reclaim(pool) == 0) std::this_thread::yield();
  }
}

}  // namespace iqs
