#include "iqs/util/rng.h"

#include "iqs/simd/dispatch.h"
#include "iqs/simd/kernels.h"

namespace iqs {

namespace {

// SplitMix64 step, used only for seeding.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : s_) word = SplitMix64(&sm);
  // xoshiro256++ requires a nonzero state; SplitMix64 cannot produce four
  // zero outputs in a row, so no further fixup is needed.
}

uint64_t Rng::Below(uint64_t bound) {
  IQS_DCHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

Rng Rng::ForkStream(uint64_t stream_id) const {
  // Absorb the four parent state words and the stream id through the
  // SplitMix64 permutation (a bijective 64-bit mix per word, so distinct
  // ids cannot collapse to one child seed except by 64-bit chance).
  uint64_t acc = 0x6a09e667f3bcc909ULL ^ stream_id;  // frac(sqrt(2)) bits
  for (const uint64_t word : s_) {
    uint64_t sm = acc ^ word;
    acc = SplitMix64(&sm);
  }
  uint64_t sm = acc ^ (stream_id * 0x9e3779b97f4a7c15ULL);
  Rng child(SplitMix64(&sm));
  // One long-jump pushes the child 2^192 steps out, so even a child whose
  // seed lands near the parent's sequence cannot overlap it within any
  // realistic draw count.
  child.LongJump();
  return child;
}

void Rng::LongJump() {
  // xoshiro256++ LONG_JUMP polynomial (Blackman & Vigna).
  static constexpr uint64_t kLongJump[4] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  uint64_t s0 = 0;
  uint64_t s1 = 0;
  uint64_t s2 = 0;
  uint64_t s3 = 0;
  for (const uint64_t jump : kLongJump) {
    for (int b = 0; b < 64; ++b) {
      if ((jump & (uint64_t{1} << b)) != 0) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      Next64();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

void Rng::FillDoubles(std::span<double> out) {
#if IQS_SIMD_HAVE_AVX2 || IQS_SIMD_HAVE_NEON
  // Vector backends consume ONE word of this stream as the block seed
  // (simd/lanes.h) — same per-element law, different byte stream. The
  // scalar path below is the bit-stable reference (simd/dispatch.h).
  if (out.size() >= simd::kFillDispatchMin) {
    const simd::Backend backend = simd::ActiveBackend();
#if IQS_SIMD_HAVE_AVX2
    if (backend == simd::Backend::kAvx2) {
      simd::FillDoublesAvx2(Next64(), out);
      return;
    }
#endif
#if IQS_SIMD_HAVE_NEON
    if (backend == simd::Backend::kNeon) {
      simd::FillDoublesNeon(Next64(), out);
      return;
    }
#endif
  }
#endif
  // Keep the four state words in locals for the whole block; the member
  // loop in NextDouble() forces a load/store per draw.
  uint64_t s0 = s_[0];
  uint64_t s1 = s_[1];
  uint64_t s2 = s_[2];
  uint64_t s3 = s_[3];
  for (double& d : out) {
    const uint64_t result = Rotl(s0 + s3, 23) + s0;
    const uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = Rotl(s3, 45);
    d = static_cast<double>(result >> 11) * 0x1.0p-53;
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

void Rng::FillBelow(uint64_t bound, std::span<uint64_t> out) {
  IQS_DCHECK(bound > 0);
#if IQS_SIMD_HAVE_AVX2 || IQS_SIMD_HAVE_NEON
  if (out.size() >= simd::kFillDispatchMin) {
    const simd::Backend backend = simd::ActiveBackend();
#if IQS_SIMD_HAVE_AVX2
    if (backend == simd::Backend::kAvx2) {
      simd::FillBelowAvx2(Next64(), bound, out);
      return;
    }
#endif
#if IQS_SIMD_HAVE_NEON
    if (backend == simd::Backend::kNeon) {
      simd::FillBelowNeon(Next64(), bound, out);
      return;
    }
#endif
  }
#endif
  // Lemire fast path first: one multiply per element, no branch taken in
  // the overwhelmingly common case; rejected lanes are patched after.
  const uint64_t threshold = -bound % bound;
  for (uint64_t& v : out) {
    const __uint128_t m = static_cast<__uint128_t>(Next64()) * bound;
    v = static_cast<uint64_t>(m >> 64);
    if (static_cast<uint64_t>(m) < threshold) {
      // Rare rejection (probability threshold / 2^64): redraw in place.
      v = Below(bound);
    }
  }
}

}  // namespace iqs
