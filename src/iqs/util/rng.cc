#include "iqs/util/rng.h"

namespace iqs {

namespace {

// SplitMix64 step, used only for seeding.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : s_) word = SplitMix64(&sm);
  // xoshiro256++ requires a nonzero state; SplitMix64 cannot produce four
  // zero outputs in a row, so no further fixup is needed.
}

uint64_t Rng::Below(uint64_t bound) {
  IQS_DCHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

}  // namespace iqs
