// Fail-fast contract checking for libiqs.
//
// The library does not use exceptions. Violated preconditions are
// programming errors and abort the process with a diagnostic. Checks are
// active in all build modes: samplers are cheap and the checks sit off the
// per-sample hot paths (hot paths use IQS_DCHECK, compiled out in NDEBUG).

#ifndef IQS_UTIL_CHECK_H_
#define IQS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace iqs::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "IQS_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace iqs::internal

#define IQS_CHECK(expr)                                      \
  do {                                                       \
    if (!(expr)) {                                           \
      ::iqs::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                        \
  } while (0)

#ifdef NDEBUG
#define IQS_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define IQS_DCHECK(expr) IQS_CHECK(expr)
#endif

#endif  // IQS_UTIL_CHECK_H_
