// Small work-stealing worker pool for the parallel batch-serving path.
//
// Design goals, in order: determinism support, TSan-cleanliness, and low
// constant factors for the coarse tasks this library produces (a "shard"
// is a contiguous range of queries worth microseconds to milliseconds of
// draw work, never a single sample). The pool therefore keeps ONE mutex
// for all queue bookkeeping — claim and completion accounting are a few
// dozen nanoseconds against shard bodies that run unlocked — and spends
// its complexity budget on the stealing discipline instead: each worker
// owns a deque seeded round-robin, pops its own work LIFO (cache-warm),
// and steals FIFO from its neighbours when it runs dry, so an uneven
// shard (one query with a huge budget) cannot idle the other workers.
//
// The CALLING thread is worker 0 and participates fully: ThreadPool(k)
// spawns k-1 background threads, and ThreadPool(1) degenerates to an
// inline loop with no locking at all. Each worker owns a persistent
// ScratchArena (worker_arena()), so steady-state parallel batches perform
// zero heap allocations, mirroring the sequential serving contract.
//
// No exceptions anywhere (project convention): misuse — a zero worker
// count, nested/concurrent ParallelFor on one pool, an out-of-range
// worker index — aborts via IQS_CHECK.

#ifndef IQS_UTIL_THREAD_POOL_H_
#define IQS_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "iqs/util/check.h"
#include "iqs/util/function_ref.h"
#include "iqs/util/scratch_arena.h"
#include "iqs/util/thread_annotations.h"

namespace iqs {

class TelemetrySink;

class ThreadPool {
 public:
  // Spawns `num_threads - 1` background workers; the caller of
  // ParallelFor acts as worker 0. num_threads must be >= 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  // Runs fn(shard, worker) exactly once for every shard in
  // [0, num_shards), with worker in [0, num_threads()). Blocks until all
  // shards have completed. The calling thread participates as worker 0.
  // One ParallelFor at a time per pool: concurrent or nested calls abort.
  void ParallelFor(size_t num_shards, FunctionRef<void(size_t, size_t)> fn)
      IQS_EXCLUDES(mu_);

  // Per-worker scratch, persistent across ParallelFor calls (so repeated
  // batches settle into zero heap allocations). Only the worker that owns
  // the index may use it during a ParallelFor.
  ScratchArena* worker_arena(size_t worker) {
    IQS_CHECK(worker < num_threads_);
    return arenas_[worker].get();
  }

  // Attaches a telemetry sink (iqs/util/telemetry.h) for steal counts and
  // per-worker busy time, or detaches with nullptr. Must not be called
  // while a ParallelFor is in flight; ScopedPool scopes it to one batch.
  // With no sink attached the pool never reads the clock.
  void set_telemetry(TelemetrySink* sink) { telemetry_ = sink; }
  TelemetrySink* telemetry() const { return telemetry_; }

 private:
  // One ParallelFor call's state, stack-allocated by the caller. Guarded
  // by mu_ except fn, which is written before workers can observe the job
  // and read-only afterwards.
  struct Job {
    FunctionRef<void(size_t, size_t)> fn;
    std::vector<std::deque<size_t>>* queues;  // one deque per worker
    size_t unclaimed = 0;       // shards still sitting in queues
    size_t unfinished = 0;      // shards not yet done executing
    size_t workers_inside = 0;  // background workers touching this job
  };

  void WorkerLoop(size_t worker) IQS_EXCLUDES(mu_);
  // Claims and runs shards until the job's queues are empty. Called with
  // mu_ held; releases it around each fn invocation (and holds it again
  // on return, as IQS_REQUIRES promises).
  void RunShards(Job* job, size_t worker) IQS_REQUIRES(mu_);

  const size_t num_threads_;
  std::vector<std::unique_ptr<ScratchArena>> arenas_;
  std::vector<std::thread> threads_;

  Mutex mu_;
  CondVar job_cv_;   // background workers wait for jobs
  CondVar done_cv_;  // the caller waits for completion
  // All queue bookkeeping changes together under mu_ (header comment):
  // the job pointer, its epoch, and shutdown. The Job's own fields are
  // guarded by mu_ too — they live on the ParallelFor caller's stack, so
  // the annotation sits on the accessors (RunShards) instead.
  uint64_t job_epoch_ IQS_GUARDED_BY(mu_) = 0;  // bumped once per ParallelFor
  Job* current_job_ IQS_GUARDED_BY(mu_) = nullptr;
  bool shutdown_ IQS_GUARDED_BY(mu_) = false;

  // Set only between ParallelFor calls (see set_telemetry), read by
  // workers mid-job; each worker writes only its own shard.
  TelemetrySink* telemetry_ = nullptr;
};

}  // namespace iqs

#endif  // IQS_UTIL_THREAD_POOL_H_
