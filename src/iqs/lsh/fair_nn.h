// r-fair nearest neighbor search (paper Section 2, Benefit 2; Section 7).
//
// Given a query point q, return a point uniformly at random among
// S ∩ B(q, r), independently of all previous queries' outputs. The
// structure follows the LSH-bucket recipe of Har-Peled & Mahabadi [17]
// (as the paper describes in Section 7): the LSH tables' buckets form the
// collection F, the query's G is the ≤ L buckets q hashes into, a uniform
// element of union(G) is drawn with the Theorem-8 set-union sampler, and a
// distance rejection filter restricts the law to the true near points.
//
// Approximation caveat (inherent to LSH, see DESIGN.md 2.4): a near point
// absent from every probed bucket can never be returned; with standard
// parameter choices this happens with small constant probability per
// point, and the output is uniform over the near points that do collide.
// The structure also offers an exact mode (kd-tree under the hood) used by
// the tests as the fairness oracle.

#ifndef IQS_LSH_FAIR_NN_H_
#define IQS_LSH_FAIR_NN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "iqs/lsh/euclidean_lsh.h"
#include "iqs/multidim/point.h"
#include "iqs/setunion/set_union_sampler.h"
#include "iqs/util/rng.h"

namespace iqs {

class FairNearNeighbor {
 public:
  struct Options {
    size_t num_tables = 8;
    size_t hashes_per_table = 4;
    // LSH quantization width, as a multiple of the query radius.
    double width_scale = 1.0;
    // Give up rejection sampling after this many draws and fall back to
    // scanning the probed buckets (still uniform; just slower).
    size_t max_rejection_draws = 256;
  };

  // Builds LSH tables and the set-union sampler over their buckets for
  // queries with radius `radius`.
  FairNearNeighbor(std::span<const multidim::Point2> points, double radius,
                   Options options, Rng* build_rng);

  // Returns the index (into the input span) of a uniformly random point
  // within distance `radius` of q among those found in the probed buckets;
  // nullopt if none. Independent across calls.
  std::optional<size_t> QueryIndex(const multidim::Point2& q, Rng* rng) const;

  // Convenience: the point itself.
  std::optional<multidim::Point2> Query(const multidim::Point2& q,
                                        Rng* rng) const;

  // The exact near-point candidates the LSH structure can see for q
  // (union of probed buckets filtered by distance). Used by tests as the
  // support of the output law, and by callers who want recall metrics.
  void VisibleNearPoints(const multidim::Point2& q,
                         std::vector<size_t>* out) const;

  double radius() const { return radius_; }
  size_t num_buckets() const { return buckets_.size(); }

  size_t MemoryBytes() const;

 private:
  // Bucket ids the query hashes into (deduplicated).
  void ProbedBuckets(const multidim::Point2& q,
                     std::vector<size_t>* bucket_ids) const;

  std::vector<multidim::Point2> points_;
  double radius_;
  Options options_;
  EuclideanLsh lsh_;
  // (table, key) -> bucket id; buckets_[id] = point indices.
  std::vector<std::unordered_map<uint64_t, uint32_t>> key_to_bucket_;
  std::vector<std::vector<uint64_t>> buckets_;
  std::unique_ptr<SetUnionSampler> union_sampler_;
};

}  // namespace iqs

#endif  // IQS_LSH_FAIR_NN_H_
