// p-stable (Gaussian) locality-sensitive hashing for 2-d Euclidean space —
// the substrate of fair near-neighbor search (paper Sections 2 and 7).
// Each of L tables hashes a point through k concatenated projections
// h(p) = floor((a . p + b) / w); the concatenation is mixed into a single
// 64-bit bucket key.

#ifndef IQS_LSH_EUCLIDEAN_LSH_H_
#define IQS_LSH_EUCLIDEAN_LSH_H_

#include <cstdint>
#include <vector>

#include "iqs/multidim/point.h"
#include "iqs/util/check.h"
#include "iqs/util/rng.h"

namespace iqs {

class EuclideanLsh {
 public:
  // `width` is the quantization width w; near points (dist <= w-ish)
  // collide with constant probability per projection.
  EuclideanLsh(size_t num_tables, size_t hashes_per_table, double width,
               Rng* build_rng);

  size_t num_tables() const { return num_tables_; }

  // The 64-bit bucket key of `p` in `table`.
  uint64_t BucketKey(size_t table, const multidim::Point2& p) const;

 private:
  struct Projection {
    double ax;
    double ay;
    double b;
  };

  size_t num_tables_;
  size_t hashes_per_table_;
  double width_;
  std::vector<Projection> projections_;  // num_tables * hashes_per_table
};

}  // namespace iqs

#endif  // IQS_LSH_EUCLIDEAN_LSH_H_
