#include "iqs/lsh/euclidean_lsh.h"

#include <cmath>

namespace iqs {

namespace {

double GaussianSample(Rng* rng) {
  const double u1 = std::max(rng->NextDouble(), 1e-300);
  const double u2 = rng->NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

uint64_t MixHash(uint64_t h, int64_t v) {
  h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

EuclideanLsh::EuclideanLsh(size_t num_tables, size_t hashes_per_table,
                           double width, Rng* build_rng)
    : num_tables_(num_tables),
      hashes_per_table_(hashes_per_table),
      width_(width) {
  IQS_CHECK(num_tables_ >= 1);
  IQS_CHECK(hashes_per_table_ >= 1);
  IQS_CHECK(width_ > 0.0);
  projections_.reserve(num_tables_ * hashes_per_table_);
  for (size_t i = 0; i < num_tables_ * hashes_per_table_; ++i) {
    projections_.push_back({GaussianSample(build_rng),
                            GaussianSample(build_rng),
                            build_rng->NextDouble() * width_});
  }
}

uint64_t EuclideanLsh::BucketKey(size_t table,
                                 const multidim::Point2& p) const {
  IQS_DCHECK(table < num_tables_);
  uint64_t key = table * 0x9e3779b97f4a7c15ULL + 1;
  const size_t base = table * hashes_per_table_;
  for (size_t j = 0; j < hashes_per_table_; ++j) {
    const Projection& proj = projections_[base + j];
    const double value = (proj.ax * p.x + proj.ay * p.y + proj.b) / width_;
    key = MixHash(key, static_cast<int64_t>(std::floor(value)));
  }
  return key;
}

}  // namespace iqs
