#include "iqs/lsh/fair_nn.h"

#include <algorithm>
#include <memory>

#include "iqs/util/check.h"

namespace iqs {

using multidim::Point2;
using multidim::SquaredDistance;

FairNearNeighbor::FairNearNeighbor(std::span<const Point2> points,
                                   double radius, Options options,
                                   Rng* build_rng)
    : points_(points.begin(), points.end()),
      radius_(radius),
      options_(options),
      lsh_(options.num_tables, options.hashes_per_table,
           options.width_scale * radius, build_rng) {
  IQS_CHECK(!points_.empty());
  IQS_CHECK(radius_ > 0.0);
  key_to_bucket_.resize(options_.num_tables);
  for (size_t table = 0; table < options_.num_tables; ++table) {
    for (size_t i = 0; i < points_.size(); ++i) {
      const uint64_t key = lsh_.BucketKey(table, points_[i]);
      auto [it, inserted] = key_to_bucket_[table].emplace(
          key, static_cast<uint32_t>(buckets_.size()));
      if (inserted) buckets_.emplace_back();
      buckets_[it->second].push_back(static_cast<uint64_t>(i));
    }
  }
  union_sampler_ = std::make_unique<SetUnionSampler>(buckets_, build_rng);
}

void FairNearNeighbor::ProbedBuckets(const Point2& q,
                                     std::vector<size_t>* bucket_ids) const {
  for (size_t table = 0; table < options_.num_tables; ++table) {
    const uint64_t key = lsh_.BucketKey(table, q);
    const auto it = key_to_bucket_[table].find(key);
    if (it != key_to_bucket_[table].end()) {
      bucket_ids->push_back(it->second);
    }
  }
  std::sort(bucket_ids->begin(), bucket_ids->end());
  bucket_ids->erase(std::unique(bucket_ids->begin(), bucket_ids->end()),
                    bucket_ids->end());
}

std::optional<size_t> FairNearNeighbor::QueryIndex(const Point2& q,
                                                   Rng* rng) const {
  std::vector<size_t> bucket_ids;
  ProbedBuckets(q, &bucket_ids);
  if (bucket_ids.empty()) return std::nullopt;
  const double r2 = radius_ * radius_;
  // Rejection loop: uniform over the bucket union, accept near points.
  for (size_t attempt = 0; attempt < options_.max_rejection_draws;
       ++attempt) {
    const std::optional<uint64_t> candidate =
        union_sampler_->Sample(bucket_ids, rng);
    if (!candidate.has_value()) return std::nullopt;
    const size_t index = static_cast<size_t>(*candidate);
    if (SquaredDistance(points_[index], q) <= r2) return index;
  }
  // Low acceptance rate (far-dominated buckets): fall back to scanning the
  // visible near points — same uniform law, O(union size) cost.
  std::vector<size_t> visible;
  VisibleNearPoints(q, &visible);
  if (visible.empty()) return std::nullopt;
  return visible[rng->Below(visible.size())];
}

std::optional<Point2> FairNearNeighbor::Query(const Point2& q,
                                              Rng* rng) const {
  const std::optional<size_t> index = QueryIndex(q, rng);
  if (!index.has_value()) return std::nullopt;
  return points_[*index];
}

void FairNearNeighbor::VisibleNearPoints(const Point2& q,
                                         std::vector<size_t>* out) const {
  std::vector<size_t> bucket_ids;
  ProbedBuckets(q, &bucket_ids);
  const double r2 = radius_ * radius_;
  std::vector<size_t> candidates;
  for (size_t bucket : bucket_ids) {
    for (uint64_t index : buckets_[bucket]) {
      candidates.push_back(static_cast<size_t>(index));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (size_t index : candidates) {
    if (SquaredDistance(points_[index], q) <= r2) out->push_back(index);
  }
}

size_t FairNearNeighbor::MemoryBytes() const {
  size_t bytes = points_.capacity() * sizeof(Point2);
  for (const auto& table : key_to_bucket_) {
    bytes += table.size() * (sizeof(uint64_t) + sizeof(uint32_t) +
                             2 * sizeof(void*));
  }
  for (const auto& bucket : buckets_) {
    bytes += bucket.capacity() * sizeof(uint64_t);
  }
  if (union_sampler_ != nullptr) bytes += union_sampler_->MemoryBytes();
  return bytes;
}

}  // namespace iqs
