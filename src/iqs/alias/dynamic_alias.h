// Dynamic weighted set sampling with expected O(1) sample time — the
// paper's future Direction 1 (Section 9): "dynamize the alias method".
//
// The alias table itself resists updates (paper Section 4.3), so this
// structure follows the classic weight-class decomposition of Matias,
// Vitter & Ni (the style of result the paper cites as [16]):
//
//   * Each element with weight w belongs to the weight class
//     e = floor(log2 w), so all weights in a class differ by < 2x.
//   * Within a class, sampling proportional-to-weight reduces to uniform
//     member choice + a rejection coin with acceptance >= 1/2:
//     expected O(1).
//   * Across classes, the class is picked proportional to its total weight
//     via a Fenwick tree over the (bounded) space of double exponents:
//     O(log 4096) ≈ a dozen cache-friendly steps, constant for any fixed
//     floating-point format. (The true [16] result removes even this for
//     integer weights; for a practical library the bounded-exponent walk is
//     indistinguishable from constant, as bench_dynamic E12 shows.)
//
// Operations: Insert O(1) amortized (+ class walk), Remove O(1) amortized
// (+ class walk), Sample expected O(1) (+ class walk). Elements are
// identified by stable handles returned from Insert().

#ifndef IQS_ALIAS_DYNAMIC_ALIAS_H_
#define IQS_ALIAS_DYNAMIC_ALIAS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "iqs/range/fenwick_tree.h"
#include "iqs/util/rng.h"

namespace iqs {

class DynamicAlias {
 public:
  DynamicAlias();

  // Inserts an element with positive weight `w`; returns a stable handle.
  size_t Insert(double w);

  // Removes the element `handle` (which must be live).
  void Remove(size_t handle);

  // Changes the weight of a live element.
  void SetWeight(size_t handle, double w);

  double weight(size_t handle) const;

  // Draws one independent weighted sample; returns its handle.
  // Expected O(1) (rejection acceptance >= 1/2 within a class).
  size_t Sample(Rng* rng) const;

  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }
  double total_weight() const { return class_sums_.TotalSum(); }

  size_t MemoryBytes() const;

 private:
  // Double exponents from ilogb() span about [-1074, 1024]; shift them
  // into [0, kNumClasses).
  static constexpr int kExponentBias = 1100;
  static constexpr int kNumClasses = 2176;

  struct Element {
    double weight = 0.0;
    int32_t class_id = -1;          // -1 marks a free slot
    uint32_t pos_in_class = 0;      // index into ClassBucket::members
  };

  struct ClassBucket {
    std::vector<uint32_t> members;  // element handles in this class
  };

  static int ClassOf(double w);

  void AttachToClass(uint32_t handle, double w);
  void DetachFromClass(uint32_t handle);

  std::vector<Element> elements_;
  std::vector<uint32_t> free_slots_;
  std::vector<ClassBucket> classes_;
  FenwickTree class_sums_;  // total weight per class
  size_t live_count_ = 0;
};

}  // namespace iqs

#endif  // IQS_ALIAS_DYNAMIC_ALIAS_H_
