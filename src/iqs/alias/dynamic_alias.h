// Dynamic weighted set sampling with expected O(1) sample time — the
// paper's future Direction 1 (Section 9): "dynamize the alias method".
//
// The alias table itself resists updates (paper Section 4.3), so this
// structure follows the classic weight-class decomposition of Matias,
// Vitter & Ni (the style of result the paper cites as [16]):
//
//   * Each element with weight w belongs to the weight class
//     e = floor(log2 w), so all weights in a class differ by < 2x.
//   * Within a class, sampling proportional-to-weight reduces to uniform
//     member choice + a rejection coin with acceptance >= 1/2:
//     expected O(1).
//   * Across classes, the class is picked proportional to its total weight
//     via a Fenwick tree over the (bounded) space of double exponents:
//     O(log 4096) ≈ a dozen cache-friendly steps, constant for any fixed
//     floating-point format. (The true [16] result removes even this for
//     integer weights; for a practical library the bounded-exponent walk is
//     indistinguishable from constant, as bench_dynamic E12 shows.)
//
// Concurrency (left-right over the epoch machinery, util/epoch.h): the
// state lives in TWO Core instances behind an atomic front pointer.
// Readers pin an epoch slot and sample the front core, which no writer
// ever mutates — non-blocking, never torn. A mutating op waits out the
// PREVIOUS swap's grace period (instant when no reader holds a pin, so a
// single-threaded caller never waits), replays the pending op log onto
// the back core, applies the new op, swaps fronts, and retires a grace
// flag through the EpochManager. Both cores process the identical op
// sequence, so handles — a deterministic function of op history — come
// out the same on both, and single-threaded behavior is byte-identical
// to the unversioned structure. Cost: 2x memory, O(1) amortized extra
// work per op (each op is applied exactly twice).
//
// Operations: Insert O(1) amortized (+ class walk), Remove O(1) amortized
// (+ class walk), Sample expected O(1) (+ class walk). Elements are
// identified by stable handles returned from Insert(). Writers are
// serialized on an internal mutex; readers never take it.

#ifndef IQS_ALIAS_DYNAMIC_ALIAS_H_
#define IQS_ALIAS_DYNAMIC_ALIAS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "iqs/range/fenwick_tree.h"
#include "iqs/util/epoch.h"
#include "iqs/util/rng.h"
#include "iqs/util/thread_annotations.h"

namespace iqs {

class TelemetrySink;

class DynamicAlias {
 public:
  DynamicAlias();
  ~DynamicAlias();

  // Two cores + an atomic front make the type address-stable.
  DynamicAlias(const DynamicAlias&) = delete;
  DynamicAlias& operator=(const DynamicAlias&) = delete;

  // Attaches a sink for the epoch counters (versions_published /
  // versions_reclaimed / reader_pins / rebuild_ns), recorded by the
  // serialized writer path into shard 0. Give this structure its own
  // sink — reader-side batches recording into the same sink would race.
  void set_telemetry(TelemetrySink* sink) { sink_ = sink; }

  // Inserts an element with positive weight `w`; returns a stable handle.
  size_t Insert(double w);

  // Removes the element `handle` (which must be live).
  void Remove(size_t handle);

  // Changes the weight of a live element.
  void SetWeight(size_t handle, double w);

  double weight(size_t handle) const;

  // Draws one independent weighted sample; returns its handle.
  // Expected O(1) (rejection acceptance >= 1/2 within a class).
  size_t Sample(Rng* rng) const;

  // Draws `s` independent samples against ONE pinned core, appending
  // handles to `out`: under concurrent updates every sample of the batch
  // follows the same (pre-batch) weight law, and the pin cost is paid
  // once instead of per sample.
  void SampleBatch(size_t s, Rng* rng, std::vector<size_t>* out) const;

  size_t size() const;
  bool empty() const { return size() == 0; }
  double total_weight() const;

  size_t MemoryBytes() const;

  // Epoch machinery, exposed for tests (grace-flag reclamation bounds).
  EpochManager* epoch_manager() const { return &epoch_; }
  uint64_t versions_published() const {
    return published_.load(std::memory_order_relaxed);
  }

 private:
  // Double exponents from ilogb() span about [-1074, 1024]; shift them
  // into [0, kNumClasses).
  static constexpr int kExponentBias = 1100;
  static constexpr int kNumClasses = 2176;

  struct Element {
    double weight = 0.0;
    int32_t class_id = -1;          // -1 marks a free slot
    uint32_t pos_in_class = 0;      // index into ClassBucket::members
  };

  struct ClassBucket {
    std::vector<uint32_t> members;  // element handles in this class
  };

  // One complete copy of the sampler state. Readers only ever touch the
  // front core; writers only ever mutate the back core.
  struct Core {
    Core();

    uint32_t Insert(double w);
    void Remove(uint32_t handle);
    void SetWeight(uint32_t handle, double w);
    size_t Sample(Rng* rng) const;
    size_t MemoryBytes() const;

    void AttachToClass(uint32_t handle, double w);
    void DetachFromClass(uint32_t handle);

    std::vector<Element> elements;
    std::vector<uint32_t> free_slots;
    std::vector<ClassBucket> classes;
    FenwickTree class_sums;  // total weight per class
    size_t live_count = 0;
  };

  struct Op {
    enum Kind : uint8_t { kInsert, kRemove, kSetWeight };
    Kind kind;
    uint32_t handle;  // kInsert: the handle the op produced (replay checks)
    double w;
  };

  static int ClassOf(double w);

  // Writer-side: waits out the previous swap's grace period, replays
  // pending_ onto the back core, and returns it ready for the next op.
  Core* PrepareBack() IQS_REQUIRES(writer_mu_);
  // Swaps `back` in as the new front, retires a grace flag, and records
  // telemetry. `op` is the op just applied.
  void PublishFront(Core* back, const Op& op, uint64_t start_ns)
      IQS_REQUIRES(writer_mu_);

  // Deliberately NOT guarded by writer_mu_: readers sample whichever core
  // front_ points at without any lock — the left-right protocol (one core
  // is always immutable, PrepareBack waits out the grace period before
  // mutating the retired one) is what makes those reads safe, not a
  // mutex. Writers only touch the back core, under writer_mu_.
  Core cores_[2];
  std::atomic<const Core*> front_;
  mutable Mutex writer_mu_;  // serializes mutating ops (+ MemoryBytes)
  // Ops applied to the front core but not yet replayed onto the back.
  std::vector<Op> pending_ IQS_GUARDED_BY(writer_mu_);
  // Grace flag of the most recent swap: retired through epoch_; its
  // "deleter" stores true once no reader can still hold the old front.
  // Storage stays owned here (the deleter frees nothing).
  std::unique_ptr<std::atomic<bool>> grace_flag_ IQS_GUARDED_BY(writer_mu_);
  std::atomic<uint64_t> published_{0};
  TelemetrySink* sink_ = nullptr;
  // Writer-side trackers turning the epoch totals into sink deltas.
  uint64_t last_reclaimed_ IQS_GUARDED_BY(writer_mu_) = 0;
  uint64_t last_pins_ IQS_GUARDED_BY(writer_mu_) = 0;
  mutable EpochManager epoch_;
};

}  // namespace iqs

#endif  // IQS_ALIAS_DYNAMIC_ALIAS_H_
