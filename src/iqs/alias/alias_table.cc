#include "iqs/alias/alias_table.h"

#include <limits>

#include "iqs/util/check.h"

namespace iqs {

void AliasTable::Build(std::span<const double> weights) {
  const size_t n = weights.size();
  IQS_CHECK(n > 0);
  IQS_CHECK(n <= std::numeric_limits<uint32_t>::max());

  total_weight_ = 0.0;
  for (double w : weights) {
    IQS_CHECK(w >= 0.0);
    total_weight_ += w;
  }
  IQS_CHECK(total_weight_ > 0.0);

  // Scaled weights: p_i = w_i * n / W, so the average is exactly 1 and each
  // urn receives total mass 1.
  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / total_weight_;
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * scale;

  // Vose's two-stack construction: repeatedly pair an under-full index
  // (mass < 1) with an over-full one, finalizing one urn per step.
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  urns_.assign(n, Urn{});
  size_t filled = 0;
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    urns_[filled++] = Urn{scaled[s], s, l};
    scaled[l] -= 1.0 - scaled[s];
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers have mass ~1 (up to floating-point rounding): single-element
  // urns that always return their primary.
  for (uint32_t l : large) urns_[filled++] = Urn{1.0, l, l};
  for (uint32_t s : small) urns_[filled++] = Urn{1.0, s, s};
  IQS_CHECK(filled == n);
}

void AliasTable::SampleMany(size_t count, Rng* rng,
                            std::vector<size_t>* out) const {
  out->reserve(out->size() + count);
  for (size_t i = 0; i < count; ++i) out->push_back(Sample(rng));
}

}  // namespace iqs
