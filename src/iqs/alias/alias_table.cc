#include "iqs/alias/alias_table.h"

#include <algorithm>
#include <limits>
#include <span>

#include "iqs/util/check.h"

namespace iqs {

void AliasTable::Build(std::span<const double> weights) {
  const size_t n = weights.size();
  IQS_CHECK(n > 0);
  IQS_CHECK(n <= std::numeric_limits<uint32_t>::max());

  total_weight_ = 0.0;
  for (double w : weights) {
    IQS_CHECK(w >= 0.0);
    total_weight_ += w;
  }
  IQS_CHECK(total_weight_ > 0.0);

  // Scaled weights: p_i = w_i * n / W, so the average is exactly 1 and each
  // urn receives total mass 1.
  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / total_weight_;
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * scale;

  // Vose's two-stack construction: repeatedly pair an under-full index
  // (mass < 1) with an over-full one, finalizing one urn per step.
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  urns_.assign(n, Urn{});
  size_t filled = 0;
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    urns_[filled++] = Urn{scaled[s], s, l};
    scaled[l] -= 1.0 - scaled[s];
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers have mass ~1 (up to floating-point rounding): single-element
  // urns that always return their primary.
  for (uint32_t l : large) urns_[filled++] = Urn{1.0, l, l};
  for (uint32_t s : small) urns_[filled++] = Urn{1.0, s, s};
  IQS_CHECK(filled == n);
}

void AliasTable::SampleMany(size_t count, Rng* rng,
                            std::vector<size_t>* out) const {
  const size_t base = out->size();
  out->resize(base + count);
  SampleBlock(rng, 0, std::span<size_t>(*out).subspan(base));
}

void AliasTable::SampleBlock(Rng* rng, size_t base,
                             std::span<size_t> out) const {
  IQS_DCHECK(!urns_.empty());
  constexpr size_t kBlock = 256;
  uint64_t urn_idx[kBlock];
  double coin[kBlock];
  const Urn* urns = urns_.data();
  constexpr size_t kPrefetchDistance = 16;
  for (size_t done = 0; done < out.size();) {
    const size_t m = std::min(out.size() - done, kBlock);
    rng->FillBelow(urns_.size(), std::span<uint64_t>(urn_idx, m));
    rng->FillDoubles(std::span<double>(coin, m));
    const size_t lead = std::min(m, kPrefetchDistance);
    for (size_t j = 0; j < lead; ++j) __builtin_prefetch(&urns[urn_idx[j]]);
    for (size_t j = 0; j < m; ++j) {
      if (j + kPrefetchDistance < m) {
        __builtin_prefetch(&urns[urn_idx[j + kPrefetchDistance]]);
      }
      const Urn& u = urns[urn_idx[j]];
      out[done + j] = base + (coin[j] < u.primary_prob ? u.primary : u.alias);
    }
    done += m;
  }
}

}  // namespace iqs
