#include "iqs/alias/alias_table.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <span>

#include "iqs/simd/dispatch.h"
#include "iqs/simd/kernels.h"
#include "iqs/util/check.h"

namespace iqs {

void AliasTable::Build(std::span<const double> weights) {
  const size_t n = weights.size();
  IQS_CHECK(n > 0);
  IQS_CHECK(n <= std::numeric_limits<uint32_t>::max());

  total_weight_ = 0.0;
  for (double w : weights) {
    // iqs-lint: allow(check-in-loop) -- cold build-path input validation
    IQS_CHECK(w >= 0.0);
    total_weight_ += w;
  }
  IQS_CHECK(total_weight_ > 0.0);

  // Scaled weights: p_i = w_i * n / W, so the average is exactly 1 and each
  // urn receives total mass 1.
  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / total_weight_;
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * scale;

  // Vose's two-stack construction: repeatedly pair an under-full index
  // (mass < 1) with an over-full one, finalizing one urn per step.
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  urns_.assign(n, Urn{});
  size_t filled = 0;
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    urns_[filled++] = Urn{scaled[s], s, l};
    scaled[l] -= 1.0 - scaled[s];
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers have mass ~1 (up to floating-point rounding): single-element
  // urns that always return their primary.
  for (uint32_t l : large) urns_[filled++] = Urn{1.0, l, l};
  for (uint32_t s : small) urns_[filled++] = Urn{1.0, s, s};
  IQS_CHECK(filled == n);
}

void AliasTable::SampleMany(size_t count, Rng* rng,
                            std::vector<size_t>* out) const {
  const size_t base = out->size();
  out->resize(base + count);
  SampleBlock(rng, 0, std::span<size_t>(*out).subspan(base));
}

void AliasTable::SampleBlock(Rng* rng, size_t base,
                             std::span<size_t> out) const {
  IQS_DCHECK(!urns_.empty());
  // The SIMD kernels gather from urns_ as raw bytes; pin the layout they
  // assume (simd/kernels.h).
  static_assert(sizeof(Urn) == simd::kUrnStride);
  static_assert(offsetof(Urn, primary_prob) == simd::kUrnProbOffset);
  static_assert(offsetof(Urn, primary) == simd::kUrnPrimaryOffset);
  static_assert(offsetof(Urn, alias) == simd::kUrnAliasOffset);
#if IQS_SIMD_HAVE_AVX2 || IQS_SIMD_HAVE_NEON
  if (out.size() >= simd::kAliasDispatchMin) {
    const simd::Backend backend = simd::ActiveBackend();
#if IQS_SIMD_HAVE_AVX2
    if (backend == simd::Backend::kAvx2) {
      simd::AliasBlockAvx2(rng->Next64(), urns_.data(), urns_.size(), base,
                           out);
      return;
    }
#endif
#if IQS_SIMD_HAVE_NEON
    if (backend == simd::Backend::kNeon) {
      simd::AliasBlockNeon(rng->Next64(), urns_.data(), urns_.size(), base,
                           out);
      return;
    }
#endif
  }
#endif
  constexpr size_t kBlock = 256;
  uint64_t urn_idx[kBlock];
  double coin[kBlock];
  const Urn* urns = urns_.data();
  constexpr size_t kPrefetchDistance = 16;
  for (size_t done = 0; done < out.size();) {
    const size_t m = std::min(out.size() - done, kBlock);
    rng->FillBelow(urns_.size(), std::span<uint64_t>(urn_idx, m));
    rng->FillDoubles(std::span<double>(coin, m));
    const size_t lead = std::min(m, kPrefetchDistance);
    for (size_t j = 0; j < lead; ++j) __builtin_prefetch(&urns[urn_idx[j]]);
    for (size_t j = 0; j < m; ++j) {
      if (j + kPrefetchDistance < m) {
        __builtin_prefetch(&urns[urn_idx[j + kPrefetchDistance]]);
      }
      const Urn& u = urns[urn_idx[j]];
      out[done + j] = base + (coin[j] < u.primary_prob ? u.primary : u.alias);
    }
    done += m;
  }
}

void AliasTable::SampleTargets(std::span<const AliasTable* const> tables,
                               std::span<const size_t> bases, Rng* rng,
                               std::span<size_t> out) {
  IQS_DCHECK(tables.size() == out.size());
  IQS_DCHECK(bases.size() == out.size());
  constexpr size_t kBlock = 256;
#if IQS_SIMD_HAVE_AVX2 || IQS_SIMD_HAVE_NEON
  if (out.size() >= simd::kAliasDispatchMin) {
    const simd::Backend backend = simd::ActiveBackend();
    if (backend != simd::Backend::kScalar) {
      // Lower each block's tables to raw (urn array, bound) pairs for the
      // gather kernel; one Rng word per block seeds its lanes.
      const void* urn_ptrs[kBlock];
      uint64_t bounds[kBlock];
      for (size_t start = 0; start < out.size(); start += kBlock) {
        const size_t m = std::min(kBlock, out.size() - start);
        for (size_t i = 0; i < m; ++i) {
          const AliasTable* table = tables[start + i];
          urn_ptrs[i] =
              table == nullptr
                  ? nullptr
                  : static_cast<const void*>(table->urns_.data());
          bounds[i] = table == nullptr ? 1 : table->urns_.size();
        }
        const std::span<size_t> dst = out.subspan(start, m);
#if IQS_SIMD_HAVE_AVX2
        if (backend == simd::Backend::kAvx2) {
          simd::AliasTargetsAvx2(rng->Next64(), urn_ptrs, bounds,
                                 bases.data() + start, dst);
          continue;
        }
#endif
#if IQS_SIMD_HAVE_NEON
        if (backend == simd::Backend::kNeon) {
          simd::AliasTargetsNeon(rng->Next64(), urn_ptrs, bounds,
                                 bases.data() + start, dst);
          continue;
        }
#endif
      }
      return;
    }
  }
#endif
  // Scalar reference: byte-identical randomness consumption to the
  // historical blocked cover loops — a block of coins, then one urn pick
  // (with prefetch) per non-null draw, then the resolve pass.
  uint64_t urn_idx[kBlock];
  double coins[kBlock];
  for (size_t start = 0; start < out.size(); start += kBlock) {
    const size_t m = std::min(kBlock, out.size() - start);
    rng->FillDoubles(std::span<double>(coins, m));
    for (size_t i = 0; i < m; ++i) {
      const AliasTable* table = tables[start + i];
      if (table == nullptr) continue;
      urn_idx[i] = rng->Below(table->size());
      table->PrefetchUrn(urn_idx[i]);
    }
    for (size_t i = 0; i < m; ++i) {
      const AliasTable* table = tables[start + i];
      out[start + i] =
          bases[start + i] +
          (table == nullptr ? 0 : table->SampleAt(urn_idx[i], coins[i]));
    }
  }
}

}  // namespace iqs
