// Dynamic weighted set sampling with O(log n) worst-case operations.
//
// This is the straightforward dynamization baseline for the paper's
// Direction 1 (Section 9): maintain weights in a Fenwick tree and sample by
// drawing a uniform mass in [0, W) and locating it with a weighted search.
// DynamicAlias (dynamic_alias.h) beats this asymptotically — expected O(1)
// sampling — and the two are compared head-to-head in bench_dynamic (E12).

#ifndef IQS_ALIAS_FENWICK_SAMPLER_H_
#define IQS_ALIAS_FENWICK_SAMPLER_H_

#include <cstddef>
#include <span>

#include "iqs/range/fenwick_tree.h"
#include "iqs/util/rng.h"

namespace iqs {

class FenwickSampler {
 public:
  // A sampler over `n` positions, all initially weight 0. Positions with
  // weight 0 are never sampled.
  explicit FenwickSampler(size_t n) : weights_(n, 0.0), tree_(n) {}

  explicit FenwickSampler(std::span<const double> weights)
      : weights_(weights.begin(), weights.end()), tree_(weights) {
    // iqs-lint: allow(check-in-loop) -- cold build-path input validation
    for (double w : weights_) IQS_CHECK(w >= 0.0);
  }

  size_t size() const { return weights_.size(); }
  double total_weight() const { return tree_.TotalSum(); }
  double weight(size_t i) const { return weights_[i]; }

  // Sets the weight of position i. O(log n).
  void SetWeight(size_t i, double w) {
    IQS_CHECK(w >= 0.0);
    tree_.Add(i, w - weights_[i]);
    weights_[i] = w;
  }

  // Draws one independent weighted sample in O(log n).
  size_t Sample(Rng* rng) const {
    const double total = tree_.TotalSum();
    IQS_DCHECK(total > 0.0);
    return tree_.SearchPrefix(rng->NextDouble() * total);
  }

  size_t MemoryBytes() const {
    return weights_.capacity() * sizeof(double) + tree_.MemoryBytes();
  }

 private:
  std::vector<double> weights_;
  FenwickTree tree_;
};

}  // namespace iqs

#endif  // IQS_ALIAS_FENWICK_SAMPLER_H_
