// The alias method for weighted set sampling (paper Section 3.1, Theorem 1).
//
// Given n positive weights w(1..n), the structure occupies O(n) space, is
// built in O(n) time, and draws one independent weighted sample — index i
// with probability w(i) / sum(w) — in O(1) worst-case time. Every call to
// Sample() consumes fresh randomness, so samples across calls (and hence
// across queries built on top of this structure) are mutually independent.
//
// This is the foundation of every other structure in the library: alias
// augmentation (Section 4) stores alias tables at tree nodes, the coverage
// techniques (Sections 5-6) build a table on the fly over a query's cover,
// and the chunked structure (Theorem 3) keeps one per chunk.

#ifndef IQS_ALIAS_ALIAS_TABLE_H_
#define IQS_ALIAS_ALIAS_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "iqs/util/rng.h"

namespace iqs {

class AliasTable {
 public:
  // An empty table; Sample() must not be called until Build().
  AliasTable() = default;

  // Builds the table over `weights`; equivalent to Build(weights).
  // All weights must be nonnegative with a positive sum.
  explicit AliasTable(std::span<const double> weights) { Build(weights); }

  AliasTable(const AliasTable&) = default;
  AliasTable& operator=(const AliasTable&) = default;
  AliasTable(AliasTable&&) = default;
  AliasTable& operator=(AliasTable&&) = default;

  // (Re)builds the table in O(n) time using Vose's stable variant of
  // Walker's urn construction: every "urn" holds at most two indices whose
  // assigned probability mass sums to 1/n (paper Section 3.1).
  void Build(std::span<const double> weights);

  // Draws one weighted sample: returns i with probability w(i) / sum(w).
  // O(1) worst case: one urn pick plus one biased coin.
  size_t Sample(Rng* rng) const {
    IQS_DCHECK(!urns_.empty());
    const size_t urn = static_cast<size_t>(rng->Below(urns_.size()));
    const Urn& u = urns_[urn];
    return rng->NextDouble() < u.primary_prob ? u.primary : u.alias;
  }

  // Draws `count` independent samples, appending them to `out`.
  // Reserves once and draws through the block path below.
  void SampleMany(size_t count, Rng* rng, std::vector<size_t>* out) const;

  // Block-sampling fast path: fills `out` with independent samples, each
  // offset by `base` (callers sampling within a subrange pass its start).
  // Consumes randomness through Rng::FillBelow / Rng::FillDoubles in
  // fixed-size stack blocks, so the urn-lookup loop has no per-draw RNG
  // state round-trips, and software-prefetches urns a fixed distance
  // ahead — on tables bigger than cache the random urn loads then miss
  // concurrently instead of one at a time. Per-sample distribution
  // identical to Sample().
  //
  // Under a SIMD backend (simd/dispatch.h) large blocks run the fused
  // vector kernel — urn pick, coin, urn gather, and compare-blend select
  // all in-register, one Rng word consumed per vector block as the lane
  // seed. Same per-sample law (chi-squared in simd_kernels_test); the
  // scalar backend keeps the bit-stable blocked loop.
  void SampleBlock(Rng* rng, size_t base, std::span<size_t> out) const;

  // Heterogeneous blocked pipeline over per-draw (table, base) pairs —
  // the shared inner loop of the cover-layer grouped draws
  // (AugRangeSampler per-node urns, ChunkedRangeSampler per-chunk urns):
  // out[i] = bases[i] + one draw from *tables[i], or just bases[i] when
  // tables[i] is null (degenerate single-element group). Blocked like
  // SampleBlock (coins for a block up front, urn picks + prefetch for the
  // whole block before any urn line is read) so the dependent misses of
  // different draws overlap; SIMD backends gather through per-lane table
  // addresses instead. Scalar randomness consumption is exactly the
  // historical blocked loops': FillDoubles per block, then one Below per
  // non-null draw.
  static void SampleTargets(std::span<const AliasTable* const> tables,
                            std::span<const size_t> bases, Rng* rng,
                            std::span<size_t> out);

  // Decomposed sampling for caller-managed prefetch pipelines (e.g. the
  // chunked sampler's middle-chunk loop): resolve an urn pick made with
  // caller-supplied randomness. `urn` must be < size(), `coin` in [0, 1);
  // with uniform inputs the result distribution equals Sample().
  size_t SampleAt(uint64_t urn, double coin) const {
    const Urn& u = urns_[urn];
    return coin < u.primary_prob ? u.primary : u.alias;
  }

  // Requests the cache line holding urn `i`.
  void PrefetchUrn(uint64_t i) const { __builtin_prefetch(&urns_[i]); }

  bool empty() const { return urns_.empty(); }
  size_t size() const { return urns_.size(); }
  double total_weight() const { return total_weight_; }

  // Heap footprint in bytes (for the space experiments, DESIGN.md E4).
  size_t MemoryBytes() const { return urns_.capacity() * sizeof(Urn); }

 private:
  struct Urn {
    // Probability of returning `primary` given this urn was picked;
    // otherwise return `alias`.
    double primary_prob = 1.0;
    uint32_t primary = 0;
    uint32_t alias = 0;
  };

  std::vector<Urn> urns_;
  double total_weight_ = 0.0;
};

}  // namespace iqs

#endif  // IQS_ALIAS_ALIAS_TABLE_H_
