#include "iqs/alias/quantized_alias.h"

#include <cmath>
#include <limits>

#include "iqs/util/check.h"

namespace iqs {

void QuantizedAlias::Build(std::span<const double> weights) {
  const size_t n = weights.size();
  IQS_CHECK(n > 0);
  IQS_CHECK(n <= std::numeric_limits<uint32_t>::max());

  double total = 0.0;
  for (double w : weights) {
    IQS_CHECK(w >= 0.0);
    total += w;
  }
  IQS_CHECK(total > 0.0);

  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / total;
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * scale;

  // Textbook Vose layout: urn i's primary is element i.
  std::vector<double> prob(n, 1.0);
  std::vector<uint32_t> alias(n);
  for (size_t i = 0; i < n; ++i) alias[i] = static_cast<uint32_t>(i);

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob[s] = scaled[s];
    alias[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers keep prob 1.0 / alias self.

  prob_q16_.resize(n);
  alias_.assign(alias.begin(), alias.end());
  for (size_t i = 0; i < n; ++i) {
    const double q = std::round(prob[i] * 65536.0);
    prob_q16_[i] = static_cast<uint16_t>(
        std::min(q, 65535.0));  // 1.0 saturates; the residual goes to alias,
                                // which is self for full urns.
  }
}

double QuantizedAlias::AssignedProbability(size_t i) const {
  IQS_CHECK(i < prob_q16_.size());
  const double n = static_cast<double>(prob_q16_.size());
  double p = static_cast<double>(prob_q16_[i]) / 65536.0 / n;
  for (size_t u = 0; u < alias_.size(); ++u) {
    if (alias_[u] == i && u != i) {
      p += (1.0 - static_cast<double>(prob_q16_[u]) / 65536.0) / n;
    }
    if (u == i && alias_[u] == i) {
      // Self-alias: the residual mass also lands on i.
      p += (1.0 - static_cast<double>(prob_q16_[u]) / 65536.0) / n;
    }
  }
  return p;
}

}  // namespace iqs
