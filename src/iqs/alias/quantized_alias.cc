#include "iqs/alias/quantized_alias.h"

#include <cmath>
#include <limits>

#include "iqs/simd/dispatch.h"
#include "iqs/simd/kernels.h"
#include "iqs/util/check.h"

namespace iqs {

void QuantizedAlias::Build(std::span<const double> weights) {
  const size_t n = weights.size();
  IQS_CHECK(n > 0);
  IQS_CHECK(n <= std::numeric_limits<uint32_t>::max());

  double total = 0.0;
  for (double w : weights) {
    // iqs-lint: allow(check-in-loop) -- cold build-path input validation
    IQS_CHECK(w >= 0.0);
    total += w;
  }
  IQS_CHECK(total > 0.0);

  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / total;
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * scale;

  // Textbook Vose layout: urn i's primary is element i.
  std::vector<double> prob(n, 1.0);
  std::vector<uint32_t> alias(n);
  for (size_t i = 0; i < n; ++i) alias[i] = static_cast<uint32_t>(i);

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob[s] = scaled[s];
    alias[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers keep prob 1.0 / alias self.

  // One sentinel element past the end keeps the SIMD 32-bit gather at the
  // last urn in bounds (see header); alias_ holds the real urn count.
  prob_q16_.resize(n + 1);
  prob_q16_[n] = 0;
  alias_.assign(alias.begin(), alias.end());
  for (size_t i = 0; i < n; ++i) {
    const double q = std::round(prob[i] * 65536.0);
    prob_q16_[i] = static_cast<uint16_t>(
        std::min(q, 65535.0));  // 1.0 saturates; the residual goes to alias,
                                // which is self for full urns.
  }
}

void QuantizedAlias::SampleMany(size_t count, Rng* rng,
                                std::vector<size_t>* out) const {
  const size_t base = out->size();
  out->resize(base + count);
  SampleBlock(rng, 0, std::span<size_t>(*out).subspan(base));
}

void QuantizedAlias::SampleBlock(Rng* rng, size_t base,
                                 std::span<size_t> out) const {
  IQS_DCHECK(!alias_.empty());
#if IQS_SIMD_HAVE_AVX2 || IQS_SIMD_HAVE_NEON
  if (out.size() >= simd::kAliasDispatchMin) {
    const simd::Backend backend = simd::ActiveBackend();
#if IQS_SIMD_HAVE_AVX2
    if (backend == simd::Backend::kAvx2) {
      simd::QuantizedBlockAvx2(rng->Next64(), prob_q16_.data(), alias_.data(),
                               alias_.size(), base, out);
      return;
    }
#endif
#if IQS_SIMD_HAVE_NEON
    if (backend == simd::Backend::kNeon) {
      simd::QuantizedBlockNeon(rng->Next64(), prob_q16_.data(), alias_.data(),
                               alias_.size(), base, out);
      return;
    }
#endif
  }
#endif
  for (size_t& v : out) v = base + Sample(rng);
}

double QuantizedAlias::AssignedProbability(size_t i) const {
  IQS_CHECK(i < alias_.size());
  const double n = static_cast<double>(alias_.size());
  double p = static_cast<double>(prob_q16_[i]) / 65536.0 / n;
  for (size_t u = 0; u < alias_.size(); ++u) {
    if (alias_[u] == i && u != i) {
      p += (1.0 - static_cast<double>(prob_q16_[u]) / 65536.0) / n;
    }
    if (u == i && alias_[u] == i) {
      // Self-alias: the residual mass also lands on i.
      p += (1.0 - static_cast<double>(prob_q16_[u]) / 65536.0) / n;
    }
  }
  return p;
}

}  // namespace iqs
