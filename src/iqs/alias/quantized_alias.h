// Approximate IQS (paper Section 9, Direction 4): epsilon-uniform sampling
// that trades a bounded probability deviation for space.
//
// Definition (from the paper): epsilon-uniform sampling over a set of size
// n returns each element with probability in
// [1/((1+eps) n), 1/((1-eps) n)].
//
// QuantizedAlias is an alias table whose per-urn coin bias is quantized to
// 16 bits and whose urn primary index is implicit (urn i's primary is
// element i, as in the textbook Vose layout), shrinking an urn from
// 16 bytes (AliasTable) to 6 bytes. Quantizing the bias moves each
// element's probability by at most 2 * 2^-16 / n absolutely, so for
// uniform weights the result is epsilon-uniform with eps <= 2^-15, and for
// general weights every element with probability >= c/n has relative error
// <= 2^-15 * 2/c. bench_approx_iqs (E13) measures the space/error
// trade-off across quantization widths.

#ifndef IQS_ALIAS_QUANTIZED_ALIAS_H_
#define IQS_ALIAS_QUANTIZED_ALIAS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "iqs/util/rng.h"

namespace iqs {

class QuantizedAlias {
 public:
  QuantizedAlias() = default;
  explicit QuantizedAlias(std::span<const double> weights) { Build(weights); }

  // O(n) build, same urn construction as AliasTable but with the bias
  // rounded to a 16-bit fixed-point fraction.
  void Build(std::span<const double> weights);

  // Draws one independent sample in O(1): element i is returned with
  // probability within +/- 2*2^-16/n of w(i)/W.
  size_t Sample(Rng* rng) const {
    IQS_DCHECK(!alias_.empty());
    const size_t urn = static_cast<size_t>(rng->Below(alias_.size()));
    const uint16_t coin = static_cast<uint16_t>(rng->Next64() >> 48);
    return coin < prob_q16_[urn] ? urn : alias_[urn];
  }

  // Draws `count` independent samples, appending them to `out`.
  void SampleMany(size_t count, Rng* rng, std::vector<size_t>* out) const;

  // Block fast path: fills `out` with independent samples offset by
  // `base`, same per-element law as Sample(). Under a SIMD backend
  // (simd/dispatch.h) large blocks run the fused vector kernel — urn
  // pick, 16-bit coin, quantized-bias and alias gathers, compare-blend —
  // seeded by one Rng word per block; the scalar backend draws through
  // Sample() bit-for-bit.
  void SampleBlock(Rng* rng, size_t base, std::span<size_t> out) const;

  bool empty() const { return alias_.empty(); }
  size_t size() const { return alias_.size(); }

  // Exact probability this structure assigns to element i (for the error
  // measurements in tests and E13): computable from the quantized urns.
  double AssignedProbability(size_t i) const;

  size_t MemoryBytes() const {
    return prob_q16_.capacity() * sizeof(uint16_t) +
           alias_.capacity() * sizeof(uint32_t);
  }

 private:
  // Urn i returns i with probability prob_q16_[i] / 2^16, else alias_[i].
  // prob_q16_ carries one trailing sentinel element beyond size() so the
  // SIMD 32-bit gather at the last urn stays in bounds (simd/kernels.h);
  // alias_ is the authoritative urn count.
  std::vector<uint16_t> prob_q16_;
  std::vector<uint32_t> alias_;
};

}  // namespace iqs

#endif  // IQS_ALIAS_QUANTIZED_ALIAS_H_
