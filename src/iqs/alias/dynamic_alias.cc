#include "iqs/alias/dynamic_alias.h"

#include <cmath>
#include <limits>

#include "iqs/util/check.h"

namespace iqs {

DynamicAlias::DynamicAlias()
    : classes_(kNumClasses), class_sums_(kNumClasses) {}

int DynamicAlias::ClassOf(double w) {
  const int e = std::ilogb(w) + kExponentBias;
  IQS_CHECK(e >= 0 && e < kNumClasses);
  return e;
}

void DynamicAlias::AttachToClass(uint32_t handle, double w) {
  const int cls = ClassOf(w);
  Element& elem = elements_[handle];
  elem.weight = w;
  elem.class_id = cls;
  elem.pos_in_class = static_cast<uint32_t>(classes_[cls].members.size());
  classes_[cls].members.push_back(handle);
  class_sums_.Add(static_cast<size_t>(cls), w);
}

void DynamicAlias::DetachFromClass(uint32_t handle) {
  Element& elem = elements_[handle];
  IQS_CHECK(elem.class_id >= 0);
  ClassBucket& bucket = classes_[elem.class_id];
  // Swap-remove from the class's member vector, fixing the moved element.
  const uint32_t last = bucket.members.back();
  bucket.members[elem.pos_in_class] = last;
  elements_[last].pos_in_class = elem.pos_in_class;
  bucket.members.pop_back();
  class_sums_.Add(static_cast<size_t>(elem.class_id), -elem.weight);
  elem.class_id = -1;
}

size_t DynamicAlias::Insert(double w) {
  IQS_CHECK(w > 0.0 && std::isfinite(w));
  uint32_t handle;
  if (!free_slots_.empty()) {
    handle = free_slots_.back();
    free_slots_.pop_back();
  } else {
    IQS_CHECK(elements_.size() < std::numeric_limits<uint32_t>::max());
    handle = static_cast<uint32_t>(elements_.size());
    elements_.emplace_back();
  }
  AttachToClass(handle, w);
  ++live_count_;
  return handle;
}

void DynamicAlias::Remove(size_t handle) {
  IQS_CHECK(handle < elements_.size());
  DetachFromClass(static_cast<uint32_t>(handle));
  free_slots_.push_back(static_cast<uint32_t>(handle));
  --live_count_;
}

void DynamicAlias::SetWeight(size_t handle, double w) {
  IQS_CHECK(w > 0.0 && std::isfinite(w));
  IQS_CHECK(handle < elements_.size());
  DetachFromClass(static_cast<uint32_t>(handle));
  AttachToClass(static_cast<uint32_t>(handle), w);
}

double DynamicAlias::weight(size_t handle) const {
  IQS_CHECK(handle < elements_.size() && elements_[handle].class_id >= 0);
  return elements_[handle].weight;
}

size_t DynamicAlias::Sample(Rng* rng) const {
  IQS_CHECK(live_count_ > 0);
  // Level 1: pick a weight class proportional to its total weight.
  // Floating-point drift in the Fenwick sums can (rarely) land the walk on
  // an emptied class; retry with fresh randomness in that case.
  while (true) {
    const double total = class_sums_.TotalSum();
    const size_t cls = class_sums_.SearchPrefix(rng->NextDouble() * total);
    const ClassBucket& bucket = classes_[cls];
    if (bucket.members.empty()) continue;
    // Level 2: uniform member + rejection. All weights in class e lie in
    // [2^e, 2^{e+1}), so acceptance probability w / 2^{e+1} is >= 1/2.
    const double cap = std::ldexp(
        1.0, static_cast<int>(cls) - kExponentBias + 1);
    while (true) {
      const uint32_t handle = bucket.members[rng->Below(bucket.members.size())];
      if (rng->NextDouble() * cap < elements_[handle].weight) return handle;
    }
  }
}

size_t DynamicAlias::MemoryBytes() const {
  size_t bytes = elements_.capacity() * sizeof(Element) +
                 free_slots_.capacity() * sizeof(uint32_t) +
                 classes_.capacity() * sizeof(ClassBucket) +
                 class_sums_.MemoryBytes();
  for (const ClassBucket& bucket : classes_) {
    bytes += bucket.members.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace iqs
