#include "iqs/alias/dynamic_alias.h"

#include <cmath>
#include <limits>
#include <thread>

#include "iqs/util/check.h"
#include "iqs/util/telemetry.h"

namespace iqs {

DynamicAlias::Core::Core() : classes(kNumClasses), class_sums(kNumClasses) {}

DynamicAlias::DynamicAlias() : front_(&cores_[0]) {}

DynamicAlias::~DynamicAlias() {
  // Runs the last grace flag's "deleter" (it frees nothing — the flag
  // storage is the grace_flag_ member) and checks no reader is pinned.
  epoch_.Drain();
}

int DynamicAlias::ClassOf(double w) {
  const int e = std::ilogb(w) + kExponentBias;
  IQS_CHECK(e >= 0 && e < kNumClasses);
  return e;
}

void DynamicAlias::Core::AttachToClass(uint32_t handle, double w) {
  const int cls = ClassOf(w);
  Element& elem = elements[handle];
  elem.weight = w;
  elem.class_id = cls;
  elem.pos_in_class = static_cast<uint32_t>(classes[cls].members.size());
  classes[cls].members.push_back(handle);
  class_sums.Add(static_cast<size_t>(cls), w);
}

void DynamicAlias::Core::DetachFromClass(uint32_t handle) {
  Element& elem = elements[handle];
  IQS_CHECK(elem.class_id >= 0);
  ClassBucket& bucket = classes[elem.class_id];
  // Swap-remove from the class's member vector, fixing the moved element.
  const uint32_t last = bucket.members.back();
  bucket.members[elem.pos_in_class] = last;
  elements[last].pos_in_class = elem.pos_in_class;
  bucket.members.pop_back();
  class_sums.Add(static_cast<size_t>(elem.class_id), -elem.weight);
  elem.class_id = -1;
}

uint32_t DynamicAlias::Core::Insert(double w) {
  IQS_CHECK(w > 0.0 && std::isfinite(w));
  uint32_t handle;
  if (!free_slots.empty()) {
    handle = free_slots.back();
    free_slots.pop_back();
  } else {
    IQS_CHECK(elements.size() < std::numeric_limits<uint32_t>::max());
    handle = static_cast<uint32_t>(elements.size());
    elements.emplace_back();
  }
  AttachToClass(handle, w);
  ++live_count;
  return handle;
}

void DynamicAlias::Core::Remove(uint32_t handle) {
  IQS_CHECK(handle < elements.size());
  DetachFromClass(handle);
  free_slots.push_back(handle);
  --live_count;
}

void DynamicAlias::Core::SetWeight(uint32_t handle, double w) {
  IQS_CHECK(w > 0.0 && std::isfinite(w));
  IQS_CHECK(handle < elements.size());
  DetachFromClass(handle);
  AttachToClass(handle, w);
}

size_t DynamicAlias::Core::Sample(Rng* rng) const {
  IQS_CHECK(live_count > 0);
  // Level 1: pick a weight class proportional to its total weight.
  // Floating-point drift in the Fenwick sums can (rarely) land the walk on
  // an emptied class; retry with fresh randomness in that case.
  while (true) {
    const double total = class_sums.TotalSum();
    const size_t cls = class_sums.SearchPrefix(rng->NextDouble() * total);
    const ClassBucket& bucket = classes[cls];
    if (bucket.members.empty()) continue;
    // Level 2: uniform member + rejection. All weights in class e lie in
    // [2^e, 2^{e+1}), so acceptance probability w / 2^{e+1} is >= 1/2.
    const double cap = std::ldexp(
        1.0, static_cast<int>(cls) - kExponentBias + 1);
    while (true) {
      const uint32_t handle = bucket.members[rng->Below(bucket.members.size())];
      if (rng->NextDouble() * cap < elements[handle].weight) return handle;
    }
  }
}

size_t DynamicAlias::Core::MemoryBytes() const {
  size_t bytes = elements.capacity() * sizeof(Element) +
                 free_slots.capacity() * sizeof(uint32_t) +
                 classes.capacity() * sizeof(ClassBucket) +
                 class_sums.MemoryBytes();
  for (const ClassBucket& bucket : classes) {
    bytes += bucket.members.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

DynamicAlias::Core* DynamicAlias::PrepareBack() {
  if (grace_flag_ != nullptr) {
    // Wait out the PREVIOUS swap's grace period: once the flag flips, no
    // reader can still be inside the old front — which is exactly the
    // core about to be mutated below. With no pinned readers the
    // publish-time Reclaim() already flipped it, so a single-threaded
    // caller never enters the loop.
    while (!grace_flag_->load(std::memory_order_acquire)) {
      epoch_.Reclaim();
      std::this_thread::yield();
    }
    grace_flag_.reset();
  }
  Core* back = front_.load(std::memory_order_relaxed) == &cores_[0]
                   ? &cores_[1]
                   : &cores_[0];
  // Bring the back core up to date: both cores process the identical op
  // sequence, so every derived quantity — handles, Fenwick sums,
  // class-bucket order — matches bit for bit.
  for (const Op& op : pending_) {
    switch (op.kind) {
      case Op::kInsert: {
        const uint32_t handle = back->Insert(op.w);
        IQS_DCHECK(handle == op.handle);
        (void)handle;
        break;
      }
      case Op::kRemove:
        back->Remove(op.handle);
        break;
      case Op::kSetWeight:
        back->SetWeight(op.handle, op.w);
        break;
    }
  }
  pending_.clear();
  return back;
}

void DynamicAlias::PublishFront(Core* back, const Op& op, uint64_t start_ns) {
  front_.store(back, std::memory_order_seq_cst);
  // Retire a fresh grace flag: its "deleter" fires once every reader that
  // might still be inside the OLD front has exited, which is the signal
  // the next op's PrepareBack waits for. Storage stays owned by
  // grace_flag_; the deleter only stores.
  grace_flag_ = std::make_unique<std::atomic<bool>>(false);
  epoch_.Retire(grace_flag_.get(), [](void* p) {
    static_cast<std::atomic<bool>*>(p)->store(true, std::memory_order_release);
  });
  epoch_.Reclaim();
  pending_.push_back(op);
  published_.fetch_add(1, std::memory_order_relaxed);
  if (sink_ != nullptr) {
    // Serialized writer path; shard 0 of the structure's own sink.
    QueryStats* stats = &sink_->shard(0)->stats;
    stats->versions_published += 1;
    const uint64_t reclaimed = epoch_.reclaimed();
    stats->versions_reclaimed += reclaimed - last_reclaimed_;
    last_reclaimed_ = reclaimed;
    const uint64_t pins = epoch_.reader_pins();
    stats->reader_pins += pins - last_pins_;
    last_pins_ = pins;
    stats->rebuild_ns += TelemetryNowNs() - start_ns;
  }
}

size_t DynamicAlias::Insert(double w) {
  MutexLock lock(&writer_mu_);
  const uint64_t start_ns = sink_ != nullptr ? TelemetryNowNs() : 0;
  Core* back = PrepareBack();
  const uint32_t handle = back->Insert(w);
  PublishFront(back, Op{Op::kInsert, handle, w}, start_ns);
  return handle;
}

void DynamicAlias::Remove(size_t handle) {
  MutexLock lock(&writer_mu_);
  const uint64_t start_ns = sink_ != nullptr ? TelemetryNowNs() : 0;
  Core* back = PrepareBack();
  back->Remove(static_cast<uint32_t>(handle));
  PublishFront(back, Op{Op::kRemove, static_cast<uint32_t>(handle), 0.0},
               start_ns);
}

void DynamicAlias::SetWeight(size_t handle, double w) {
  MutexLock lock(&writer_mu_);
  const uint64_t start_ns = sink_ != nullptr ? TelemetryNowNs() : 0;
  Core* back = PrepareBack();
  back->SetWeight(static_cast<uint32_t>(handle), w);
  PublishFront(back, Op{Op::kSetWeight, static_cast<uint32_t>(handle), w},
               start_ns);
}

double DynamicAlias::weight(size_t handle) const {
  const size_t slot = epoch_.EnterReader();
  const Core* core = front_.load(std::memory_order_seq_cst);
  IQS_CHECK(handle < core->elements.size() &&
            core->elements[handle].class_id >= 0);
  const double w = core->elements[handle].weight;
  epoch_.ExitReader(slot);
  return w;
}

size_t DynamicAlias::Sample(Rng* rng) const {
  const size_t slot = epoch_.EnterReader();
  const Core* core = front_.load(std::memory_order_seq_cst);
  const size_t result = core->Sample(rng);
  epoch_.ExitReader(slot);
  return result;
}

void DynamicAlias::SampleBatch(size_t s, Rng* rng,
                               std::vector<size_t>* out) const {
  const size_t slot = epoch_.EnterReader();
  const Core* core = front_.load(std::memory_order_seq_cst);
  out->reserve(out->size() + s);
  for (size_t i = 0; i < s; ++i) out->push_back(core->Sample(rng));
  epoch_.ExitReader(slot);
}

size_t DynamicAlias::size() const {
  const size_t slot = epoch_.EnterReader();
  const size_t n = front_.load(std::memory_order_seq_cst)->live_count;
  epoch_.ExitReader(slot);
  return n;
}

double DynamicAlias::total_weight() const {
  const size_t slot = epoch_.EnterReader();
  const double total =
      front_.load(std::memory_order_seq_cst)->class_sums.TotalSum();
  epoch_.ExitReader(slot);
  return total;
}

size_t DynamicAlias::MemoryBytes() const {
  // Both cores + the op log: the honest left-right footprint (~2x the
  // unversioned structure). Locks out writers so the back core's vectors
  // are not concurrently reallocating.
  MutexLock lock(&writer_mu_);
  return cores_[0].MemoryBytes() + cores_[1].MemoryBytes() +
         pending_.capacity() * sizeof(Op);
}

}  // namespace iqs
