#include "iqs/range/dynamic_range_sampler.h"

#include "iqs/alias/alias_table.h"
#include "iqs/util/check.h"

namespace iqs {

void DynamicRangeSampler::Pull(uint32_t v) {
  Node& node = nodes_[v];
  node.subtree_weight = node.weight;
  if (node.left != kNull) node.subtree_weight += nodes_[node.left].subtree_weight;
  if (node.right != kNull) {
    node.subtree_weight += nodes_[node.right].subtree_weight;
  }
}

uint32_t DynamicRangeSampler::NewNode(double key, double weight) {
  uint32_t v;
  if (!free_list_.empty()) {
    v = free_list_.back();
    free_list_.pop_back();
    nodes_[v] = Node{};
  } else {
    v = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[v].key = key;
  nodes_[v].weight = weight;
  nodes_[v].subtree_weight = weight;
  nodes_[v].priority = priority_rng_.Next64();
  return v;
}

void DynamicRangeSampler::FreeNode(uint32_t v) { free_list_.push_back(v); }

void DynamicRangeSampler::Split(uint32_t v, double key, bool before,
                                uint32_t* lo_out, uint32_t* hi_out) {
  if (v == kNull) {
    *lo_out = kNull;
    *hi_out = kNull;
    return;
  }
  Node& node = nodes_[v];
  const bool goes_low = before ? node.key < key : node.key <= key;
  if (goes_low) {
    uint32_t mid_lo;
    uint32_t mid_hi;
    Split(node.right, key, before, &mid_lo, &mid_hi);
    node.right = mid_lo;
    Pull(v);
    *lo_out = v;
    *hi_out = mid_hi;
  } else {
    uint32_t mid_lo;
    uint32_t mid_hi;
    Split(node.left, key, before, &mid_lo, &mid_hi);
    node.left = mid_hi;
    Pull(v);
    *lo_out = mid_lo;
    *hi_out = v;
  }
}

uint32_t DynamicRangeSampler::Merge(uint32_t a, uint32_t b) {
  if (a == kNull) return b;
  if (b == kNull) return a;
  if (nodes_[a].priority >= nodes_[b].priority) {
    nodes_[a].right = Merge(nodes_[a].right, b);
    Pull(a);
    return a;
  }
  nodes_[b].left = Merge(a, nodes_[b].left);
  Pull(b);
  return b;
}

void DynamicRangeSampler::Insert(double key, double weight) {
  IQS_CHECK(weight > 0.0);
  uint32_t lo;
  uint32_t hi;
  Split(root_, key, /*before=*/true, &lo, &hi);
  root_ = Merge(Merge(lo, NewNode(key, weight)), hi);
  ++size_;
}

bool DynamicRangeSampler::Delete(double key) {
  uint32_t lo;
  uint32_t mid;
  uint32_t hi;
  Split(root_, key, /*before=*/true, &lo, &mid);
  Split(mid, key, /*before=*/false, &mid, &hi);
  bool deleted = false;
  if (mid != kNull) {
    // `mid` holds exactly the elements with this key; drop its root.
    const uint32_t removed = mid;
    mid = Merge(nodes_[mid].left, nodes_[mid].right);
    FreeNode(removed);
    --size_;
    deleted = true;
  }
  root_ = Merge(Merge(lo, mid), hi);
  return deleted;
}

bool DynamicRangeSampler::SetWeight(double key, double weight) {
  IQS_CHECK(weight > 0.0);
  // Iterative descent recording the path for weight re-summation.
  uint32_t path[128];
  size_t depth = 0;
  uint32_t v = root_;
  while (v != kNull) {
    IQS_DCHECK(depth < 128);
    path[depth++] = v;
    if (key < nodes_[v].key) {
      v = nodes_[v].left;
    } else if (key > nodes_[v].key) {
      v = nodes_[v].right;
    } else {
      nodes_[v].weight = weight;
      while (depth > 0) Pull(path[--depth]);
      return true;
    }
  }
  return false;
}

double DynamicRangeSampler::SampleSubtree(uint32_t v, Rng* rng) const {
  while (true) {
    const Node& node = nodes_[v];
    double target = rng->NextDouble() * node.subtree_weight;
    if (node.left != kNull) {
      if (target < nodes_[node.left].subtree_weight) {
        v = node.left;
        continue;
      }
      target -= nodes_[node.left].subtree_weight;
    }
    if (target < node.weight || node.right == kNull) return node.key;
    v = node.right;
  }
}

bool DynamicRangeSampler::Query(double lo, double hi, size_t s, Rng* rng,
                                std::vector<double>* out) const {
  if (lo > hi || root_ == kNull) return false;
  // Canonical decomposition without mutating the treap: descend to the
  // split node, then peel off maximal subtrees along the two boundary
  // paths. Pieces are whole subtrees (sampled top-down) or single nodes.
  struct Piece {
    uint32_t node;
    bool whole_subtree;
  };
  std::vector<Piece> pieces;
  std::vector<double> piece_weights;
  auto add_node = [&](uint32_t v) {
    pieces.push_back({v, false});
    piece_weights.push_back(nodes_[v].weight);
  };
  auto add_subtree = [&](uint32_t v) {
    if (v == kNull) return;
    pieces.push_back({v, true});
    piece_weights.push_back(nodes_[v].subtree_weight);
  };

  // Find the topmost node whose key lies in [lo, hi].
  uint32_t v = root_;
  while (v != kNull &&
         (nodes_[v].key < lo || nodes_[v].key > hi)) {
    v = nodes_[v].key < lo ? nodes_[v].right : nodes_[v].left;
  }
  if (v == kNull) return false;
  add_node(v);

  // Left boundary: in v's left subtree, keep everything with key >= lo.
  uint32_t w = nodes_[v].left;
  while (w != kNull) {
    if (nodes_[w].key >= lo) {
      add_node(w);
      add_subtree(nodes_[w].right);
      w = nodes_[w].left;
    } else {
      w = nodes_[w].right;
    }
  }
  // Right boundary: in v's right subtree, keep everything with key <= hi.
  w = nodes_[v].right;
  while (w != kNull) {
    if (nodes_[w].key <= hi) {
      add_node(w);
      add_subtree(nodes_[w].left);
      w = nodes_[w].right;
    } else {
      w = nodes_[w].left;
    }
  }

  if (s == 0) return true;
  AliasTable alias(piece_weights);
  out->reserve(out->size() + s);
  for (size_t i = 0; i < s; ++i) {
    const Piece& piece = pieces[alias.Sample(rng)];
    out->push_back(piece.whole_subtree ? SampleSubtree(piece.node, rng)
                                       : nodes_[piece.node].key);
  }
  return true;
}

double DynamicRangeSampler::RangeWeight(double lo, double hi) const {
  if (lo > hi || root_ == kNull) return 0.0;
  double total = 0.0;
  uint32_t v = root_;
  while (v != kNull && (nodes_[v].key < lo || nodes_[v].key > hi)) {
    v = nodes_[v].key < lo ? nodes_[v].right : nodes_[v].left;
  }
  if (v == kNull) return 0.0;
  total += nodes_[v].weight;
  uint32_t w = nodes_[v].left;
  while (w != kNull) {
    if (nodes_[w].key >= lo) {
      total += nodes_[w].weight;
      if (nodes_[w].right != kNull) {
        total += nodes_[nodes_[w].right].subtree_weight;
      }
      w = nodes_[w].left;
    } else {
      w = nodes_[w].right;
    }
  }
  w = nodes_[v].right;
  while (w != kNull) {
    if (nodes_[w].key <= hi) {
      total += nodes_[w].weight;
      if (nodes_[w].left != kNull) {
        total += nodes_[nodes_[w].left].subtree_weight;
      }
      w = nodes_[w].right;
    } else {
      w = nodes_[w].left;
    }
  }
  return total;
}

}  // namespace iqs
