// Integer-domain weighted range sampling (paper Section 4.3): Afshani &
// Wei's observation that when keys come from an integer universe [0, U),
// the O(log n) interval-resolution term of Theorem 3 drops to
// O(log log U) — giving O(log log U + s) queries in O(n) space.
//
// Substrate: a static y-fast predecessor structure (StaticYFastIndex).
// The sorted keys are cut into buckets of ~log2(U) keys; an x-fast trie
// over the bucket representatives answers "longest existing prefix" by
// binary search over the bits+1 trie levels (O(log bits) = O(log log U)
// hash probes), and a final binary search inside one bucket costs another
// O(log log U). Space: O(n) — the trie holds <= (n / bits) * bits = n
// prefix nodes.
//
// IntegerRangeSampler = StaticYFastIndex for interval resolution +
// the Theorem-3 chunked sampler for the draws.

#ifndef IQS_RANGE_INTEGER_RANGE_SAMPLER_H_
#define IQS_RANGE_INTEGER_RANGE_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "iqs/range/chunked_range_sampler.h"
#include "iqs/range/range_sampler.h"  // BatchResult
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace iqs {

// One integer-interval query of a serving batch.
struct IntegerBatchQuery {
  uint64_t lo = 0;
  uint64_t hi = 0;
  size_t s = 0;
};

// Static predecessor index over sorted distinct uint64 keys drawn from
// [0, 2^key_bits). Predecessor(q) = index of the largest key <= q in
// O(log key_bits) expected time.
class StaticYFastIndex {
 public:
  // `keys` sorted and distinct, all < 2^key_bits.
  StaticYFastIndex(std::span<const uint64_t> keys, int key_bits);

  // Index of the largest key <= q; nullopt when q < keys[0].
  std::optional<size_t> Predecessor(uint64_t q) const;

  size_t n() const { return keys_.size(); }
  int key_bits() const { return key_bits_; }

  size_t MemoryBytes() const;

 private:
  struct TrieNode {
    uint32_t min_rep = 0;  // smallest representative index below
    uint32_t max_rep = 0;  // largest representative index below
  };

  int key_bits_;
  size_t bucket_size_;
  std::vector<uint64_t> keys_;
  std::vector<uint64_t> reps_;  // first key of each bucket
  // levels_[l] maps (rep >> l) -> node; level key_bits_ is the root.
  std::vector<std::unordered_map<uint64_t, TrieNode>> levels_;
};

class IntegerRangeSampler {
 public:
  // `keys` sorted, distinct, < 2^key_bits; `weights` positive, parallel.
  IntegerRangeSampler(std::span<const uint64_t> keys,
                      std::span<const double> weights, int key_bits = 32);

  // Draws `s` independent weighted samples from keys in [lo, hi],
  // appending POSITIONS (indices into the sorted key order); false when
  // the range is empty. O(log log U + log n·(chunk draws) + s) — interval
  // resolution is O(log log U), the rest matches Theorem 3.
  bool Query(uint64_t lo, uint64_t hi, size_t s, Rng* rng,
             std::vector<size_t>* out) const;

  // Resolves [lo, hi] to inclusive positions via the y-fast index.
  bool ResolveInterval(uint64_t lo, uint64_t hi, size_t* a, size_t* b) const;

  // Batched serving fast path (mirrors RangeSampler::QueryBatch): every
  // interval is resolved once through the y-fast index, then all draws
  // ride the Theorem-3 structure's single CoverExecutor run.
  // result->positions holds sorted-order positions.
  // opts.num_threads >= 1 serves the batch in the deterministic
  // parallel mode (see BatchOptions). Canonical order
  // (queries, rng, arena, opts, &result).
  void QueryBatch(std::span<const IntegerBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, const BatchOptions& opts,
                  BatchResult* result) const;

  // Convenience: default options.
  void QueryBatch(std::span<const IntegerBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, BatchResult* result) const;

  uint64_t key_at(size_t position) const { return keys_[position]; }
  size_t n() const { return keys_.size(); }

  size_t MemoryBytes() const {
    return index_.MemoryBytes() + sampler_->MemoryBytes() +
           keys_.capacity() * sizeof(uint64_t);
  }

 private:
  std::vector<uint64_t> keys_;
  StaticYFastIndex index_;
  std::unique_ptr<ChunkedRangeSampler> sampler_;  // over positions
};

}  // namespace iqs

#endif  // IQS_RANGE_INTEGER_RANGE_SAMPLER_H_
