#include "iqs/range/integer_range_sampler.h"

#include <algorithm>
#include <numeric>

#include "iqs/util/check.h"
#include "iqs/util/telemetry.h"

namespace iqs {

StaticYFastIndex::StaticYFastIndex(std::span<const uint64_t> keys,
                                   int key_bits)
    : key_bits_(key_bits), keys_(keys.begin(), keys.end()) {
  IQS_CHECK(key_bits_ >= 1 && key_bits_ <= 64);
  IQS_CHECK(!keys_.empty());
  for (size_t i = 0; i < keys_.size(); ++i) {
    // iqs-lint: allow(check-in-loop) -- cold build-path input validation
    if (key_bits_ < 64) IQS_CHECK(keys_[i] < (uint64_t{1} << key_bits_));
    // iqs-lint: allow(check-in-loop) -- cold build-path input validation
    if (i > 0) IQS_CHECK(keys_[i - 1] < keys_[i]);
  }
  bucket_size_ = std::max<size_t>(1, static_cast<size_t>(key_bits_));

  // Representatives: first key of each bucket.
  for (size_t i = 0; i < keys_.size(); i += bucket_size_) {
    reps_.push_back(keys_[i]);
  }

  // x-fast trie over the representatives: one hash level per prefix
  // length, each node recording the rep-index span below it.
  levels_.resize(static_cast<size_t>(key_bits_) + 1);
  for (uint32_t r = 0; r < reps_.size(); ++r) {
    for (int level = 0; level <= key_bits_; ++level) {
      const uint64_t prefix = level == 64 ? 0 : reps_[r] >> level;
      auto [it, inserted] = levels_[static_cast<size_t>(level)].emplace(
          prefix, TrieNode{r, r});
      if (!inserted) {
        it->second.min_rep = std::min(it->second.min_rep, r);
        it->second.max_rep = std::max(it->second.max_rep, r);
      }
    }
  }
}

std::optional<size_t> StaticYFastIndex::Predecessor(uint64_t q) const {
  if (q < keys_[0]) return std::nullopt;
  if (key_bits_ < 64 && q >= (uint64_t{1} << key_bits_)) {
    return keys_.size() - 1;  // above the whole universe
  }
  // Binary search for the lowest level whose prefix of q exists in the
  // trie — the longest common prefix between q and any representative.
  // Invariant: prefix exists at `hi`, does not exist below `lo - 1`...
  size_t rep_index;
  const auto& level0 = levels_[0];
  if (level0.contains(q)) {
    rep_index = level0.at(q).min_rep;
  } else {
    int lo = 0;  // prefix at level lo may or may not exist
    int hi = key_bits_;  // root always exists
    while (lo + 1 < hi) {
      const int mid = (lo + hi) / 2;
      const uint64_t prefix = mid == 64 ? 0 : q >> mid;
      if (levels_[static_cast<size_t>(mid)].contains(prefix)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    // `hi` is the lowest existing level; q's branch at bit hi-1 is absent.
    const uint64_t prefix = hi == 64 ? 0 : q >> hi;
    const TrieNode& node = levels_[static_cast<size_t>(hi)].at(prefix);
    const bool q_goes_right = ((q >> (hi - 1)) & 1) != 0;
    if (q_goes_right) {
      // Everything under this node is smaller than q.
      rep_index = node.max_rep;
    } else {
      // Everything under this node is larger than q: step left.
      if (node.min_rep == 0) {
        // q is below every representative but >= keys_[0] (checked),
        // which is reps_[0]: impossible — keys_[0] == reps_[0] <= q.
        rep_index = 0;
      } else {
        rep_index = node.min_rep - 1;
      }
    }
  }
  // Final search inside the bucket (size <= key_bits).
  const size_t bucket_lo = rep_index * bucket_size_;
  const size_t bucket_hi =
      std::min(bucket_lo + bucket_size_, keys_.size());
  const auto it = std::upper_bound(keys_.begin() + bucket_lo,
                                   keys_.begin() + bucket_hi, q);
  IQS_DCHECK(it != keys_.begin() + bucket_lo);
  return static_cast<size_t>(it - keys_.begin()) - 1;
}

size_t StaticYFastIndex::MemoryBytes() const {
  size_t bytes = keys_.capacity() * sizeof(uint64_t) +
                 reps_.capacity() * sizeof(uint64_t);
  for (const auto& level : levels_) {
    bytes += level.size() *
             (sizeof(uint64_t) + sizeof(TrieNode) + 2 * sizeof(void*));
  }
  return bytes;
}

IntegerRangeSampler::IntegerRangeSampler(std::span<const uint64_t> keys,
                                         std::span<const double> weights,
                                         int key_bits)
    : keys_(keys.begin(), keys.end()), index_(keys, key_bits) {
  IQS_CHECK(keys.size() == weights.size());
  std::vector<double> position_keys(keys.size());
  std::iota(position_keys.begin(), position_keys.end(), 0.0);
  sampler_ = std::make_unique<ChunkedRangeSampler>(position_keys, weights);
}

bool IntegerRangeSampler::ResolveInterval(uint64_t lo, uint64_t hi,
                                          size_t* a, size_t* b) const {
  if (lo > hi) return false;
  const auto hi_pred = index_.Predecessor(hi);
  if (!hi_pred.has_value()) return false;  // everything > hi
  *b = *hi_pred;
  if (lo == 0) {
    *a = 0;
  } else {
    const auto lo_pred = index_.Predecessor(lo - 1);
    *a = lo_pred.has_value() ? *lo_pred + 1 : 0;
  }
  return *a <= *b;
}

bool IntegerRangeSampler::Query(uint64_t lo, uint64_t hi, size_t s,
                                Rng* rng, std::vector<size_t>* out) const {
  size_t a = 0;
  size_t b = 0;
  if (!ResolveInterval(lo, hi, &a, &b)) return false;
  sampler_->QueryPositions(a, b, s, rng, out);
  return true;
}

void IntegerRangeSampler::QueryBatch(std::span<const IntegerBatchQuery> queries,
                                     Rng* rng, ScratchArena* arena,
                                     BatchResult* result) const {
  QueryBatch(queries, rng, arena, BatchOptions{}, result);
}

void IntegerRangeSampler::QueryBatch(std::span<const IntegerBatchQuery> queries,
                                     Rng* rng, ScratchArena* arena,
                                     const BatchOptions& opts,
                                     BatchResult* result) const {
  const uint64_t start_ns = opts.telemetry != nullptr ? TelemetryNowNs() : 0;
  result->Clear();
  arena->Reset();
  const size_t q = queries.size();
  result->resolved.resize(q);
  result->offsets.resize(q + 1);

  const std::span<PositionQuery> resolved = arena->Alloc<PositionQuery>(q);
  size_t total_samples = 0;
  for (size_t i = 0; i < q; ++i) {
    PositionQuery& pq = resolved[i];
    const bool ok = ResolveInterval(queries[i].lo, queries[i].hi, &pq.a, &pq.b);
    result->resolved[i] = ok ? 1 : 0;
    pq.s = ok ? queries[i].s : 0;
    result->offsets[i] = total_samples;
    total_samples += pq.s;
  }
  result->offsets[q] = total_samples;

  result->positions.clear();
  result->positions.reserve(total_samples);
  // The nested chunked sampler keeps the sink: it is the serving engine
  // here (this wrapper only resolves intervals), so its counters ARE this
  // batch's counters. The latency sample is still recorded once, here.
  sampler_->QueryPositionsBatch(resolved, rng, arena, opts,
                                &result->positions);
  IQS_CHECK(result->positions.size() == total_samples);
  if (opts.telemetry != nullptr) {
    opts.telemetry->shard(0)->latency.Record(TelemetryNowNs() - start_ns);
  }
}

}  // namespace iqs
