#include "iqs/range/static_bst.h"

#include <limits>

namespace iqs {

StaticBst::StaticBst(std::span<const double> weights)
    : num_leaves_(weights.size()) {
  IQS_CHECK(num_leaves_ > 0);
  IQS_CHECK(num_leaves_ < std::numeric_limits<uint32_t>::max() / 2);
  nodes_.reserve(2 * num_leaves_ - 1);
  leaf_of_position_.resize(num_leaves_);
  const NodeId root_id = BuildRange(weights, 0, num_leaves_ - 1);
  IQS_CHECK(root_id == 0);
}

StaticBst::NodeId StaticBst::BuildRange(std::span<const double> weights,
                                        size_t lo, size_t hi) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.emplace_back();
  nodes_[id].lo = static_cast<uint32_t>(lo);
  nodes_[id].hi = static_cast<uint32_t>(hi);
  if (lo == hi) {
    IQS_CHECK(weights[lo] > 0.0);
    nodes_[id].weight = weights[lo];
    leaf_of_position_[lo] = id;
    return id;
  }
  const size_t mid = lo + (hi - lo) / 2;
  const NodeId left = BuildRange(weights, lo, mid);
  const NodeId right = BuildRange(weights, mid + 1, hi);
  nodes_[id].left = left;
  nodes_[id].right = right;
  nodes_[id].weight = nodes_[left].weight + nodes_[right].weight;
  return id;
}

void StaticBst::CanonicalCover(size_t a, size_t b,
                               std::vector<NodeId>* out) const {
  IQS_CHECK(a <= b && b < num_leaves_);
  // Iterative descent with an explicit stack; each node either lies fully
  // inside [a, b] (canonical), fully outside (pruned), or straddles a
  // boundary (recurse). Only nodes on the two root-to-boundary paths
  // straddle, so the walk touches O(log n) nodes.
  NodeId stack[128];
  size_t top = 0;
  stack[top++] = root();
  while (top > 0) {
    const NodeId u = stack[--top];
    const Node& node = nodes_[u];
    if (node.lo > b || node.hi < a) continue;
    if (a <= node.lo && node.hi <= b) {
      out->push_back(u);
      continue;
    }
    IQS_DCHECK(top + 2 <= 128);
    // Push right first so covers come out in left-to-right position order.
    stack[top++] = node.right;
    stack[top++] = node.left;
  }
}

size_t StaticBst::SampleLeaf(NodeId u, Rng* rng) const {
  while (!IsLeaf(u)) {
    const Node& node = nodes_[u];
    const double left_weight = nodes_[node.left].weight;
    u = rng->NextDouble() * node.weight < left_weight ? node.left
                                                      : node.right;
  }
  return LeafPosition(u);
}

size_t StaticBst::Height() const {
  // The tree is weight-agnostic balanced (midpoint splits), so height is
  // ceil(log2 n); compute it by walking the leftmost path.
  size_t height = 0;
  NodeId u = root();
  while (!IsLeaf(u)) {
    u = nodes_[u].left;
    ++height;
  }
  return height;
}

}  // namespace iqs
