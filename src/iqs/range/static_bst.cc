#include "iqs/range/static_bst.h"

#include <cstddef>
#include <limits>

#include "iqs/simd/dispatch.h"
#include "iqs/simd/kernels.h"

namespace iqs {

StaticBst::StaticBst(std::span<const double> weights)
    : num_leaves_(weights.size()) {
  IQS_CHECK(num_leaves_ > 0);
  IQS_CHECK(num_leaves_ < std::numeric_limits<uint32_t>::max() / 2);
  const size_t num_nodes = 2 * num_leaves_ - 1;
  nodes_.resize(num_nodes);
  leaf_of_position_.resize(num_leaves_);

  // BFS construction: ids are assigned in level order and the two children
  // of a node are allocated adjacently, so right == left + 1 everywhere.
  // The nodes_ array doubles as the BFS queue — [lo, hi] of queued nodes
  // are written when their parent is processed.
  nodes_[0].lo = 0;
  nodes_[0].hi = static_cast<uint32_t>(num_leaves_ - 1);
  size_t tail = 1;
  for (size_t u = 0; u < num_nodes; ++u) {
    const uint32_t lo = nodes_[u].lo;
    const uint32_t hi = nodes_[u].hi;
    if (lo == hi) {
      // iqs-lint: allow(check-in-loop) -- cold build-path input validation
      IQS_CHECK(weights[lo] > 0.0);
      leaf_of_position_[lo] = static_cast<NodeId>(u);
      continue;
    }
    const uint32_t mid = lo + (hi - lo) / 2;
    nodes_[u].left = static_cast<NodeId>(tail);
    nodes_[tail].lo = lo;
    nodes_[tail].hi = mid;
    nodes_[tail + 1].lo = mid + 1;
    nodes_[tail + 1].hi = hi;
    tail += 2;
  }
  IQS_CHECK(tail == num_nodes);

  // Subtree weights bottom-up; BFS order guarantees children have larger
  // ids than their parent.
  for (size_t u = num_nodes; u-- > 0;) {
    const NodeId left = nodes_[u].left;
    nodes_[u].weight = left == kNullNode
                           ? weights[nodes_[u].lo]
                           : nodes_[left].weight + nodes_[left + 1].weight;
  }
}

void StaticBst::CanonicalCover(size_t a, size_t b,
                               std::vector<NodeId>* out) const {
  const size_t base = out->size();
  out->resize(base + MaxCoverSize());
  const size_t count =
      CanonicalCover(a, b, std::span<NodeId>(*out).subspan(base));
  out->resize(base + count);
}

size_t StaticBst::CanonicalCover(size_t a, size_t b,
                                 std::span<NodeId> out) const {
  IQS_CHECK(a <= b && b < num_leaves_);
  // Iterative descent with an explicit stack; each node either lies fully
  // inside [a, b] (canonical), fully outside (pruned), or straddles a
  // boundary (recurse). Only nodes on the two root-to-boundary paths
  // straddle, so the walk touches O(log n) nodes.
  NodeId stack[128];
  size_t top = 0;
  size_t count = 0;
  stack[top++] = root();
  while (top > 0) {
    const NodeId u = stack[--top];
    const Node& node = nodes_[u];
    if (node.lo > b || node.hi < a) continue;
    if (a <= node.lo && node.hi <= b) {
      IQS_DCHECK(count < out.size());
      out[count++] = u;
      continue;
    }
    IQS_DCHECK(top + 2 <= 128);
    // Push right first so covers come out in left-to-right position order.
    stack[top++] = node.left + 1;
    stack[top++] = node.left;
  }
  return count;
}

size_t StaticBst::SampleLeaf(NodeId u, Rng* rng) const {
  const Node* nodes = nodes_.data();
  while (nodes[u].left != kNullNode) {
    const Node& node = nodes[u];
    const double left_weight = nodes[node.left].weight;
    u = rng->NextDouble() * node.weight < left_weight ? node.left
                                                      : node.left + 1;
  }
  return nodes[u].lo;
}

void StaticBst::SampleLeaves(NodeId u, Rng* rng, ScratchArena* arena,
                             std::span<size_t> out) const {
  const size_t count = out.size();
  if (count == 0) return;
  const std::span<NodeId> lanes = arena->Alloc<NodeId>(count);
  for (size_t i = 0; i < count; ++i) lanes[i] = u;
  DescendToLeaves(lanes, rng, arena);
  for (size_t i = 0; i < count; ++i) out[i] = nodes_[lanes[i]].lo;
}

size_t StaticBst::DescendToLeaves(std::span<NodeId> lanes, Rng* rng,
                                  ScratchArena* arena) const {
  if (lanes.empty()) return 0;
  size_t steps = 0;
  const Node* nodes = nodes_.data();
  // The SIMD kernels gather node fields as raw bytes; pin the layout they
  // assume (simd/kernels.h).
  static_assert(sizeof(Node) == simd::kNodeStride);
  static_assert(offsetof(Node, weight) == simd::kNodeWeightOffset);
  static_assert(offsetof(Node, left) == simd::kNodeLeftOffset);
  static_assert(kNullNode == simd::kNullNodeId);
  // Level-synchronous descent: every pass advances all still-internal
  // lanes one level, drawing the pass's randomness in one block and
  // prefetching each lane's next node so the node loads of the following
  // pass miss the cache concurrently rather than one at a time. Lanes are
  // processed in fixed-size chunks — memory-level parallelism saturates
  // well below kLaneBlock, and the chunk bounds the scratch footprint.
  constexpr size_t kLaneBlock = 2048;
#if IQS_SIMD_HAVE_AVX2 || IQS_SIMD_HAVE_NEON
  if (lanes.size() >= simd::kDescendDispatchMin) {
    const simd::Backend backend = simd::ActiveBackend();
    if (backend != simd::Backend::kScalar) {
      for (size_t start = 0; start < lanes.size(); start += kLaneBlock) {
        const std::span<NodeId> block =
            lanes.subspan(start, std::min(kLaneBlock, lanes.size() - start));
#if IQS_SIMD_HAVE_AVX2
        if (backend == simd::Backend::kAvx2) {
          steps += simd::DescendLanesAvx2(rng->Next64(), nodes, block);
          continue;
        }
#endif
#if IQS_SIMD_HAVE_NEON
        if (backend == simd::Backend::kNeon) {
          steps += simd::DescendLanesNeon(rng->Next64(), nodes, block);
          continue;
        }
#endif
      }
      return steps;
    }
  }
#endif
  const std::span<double> rnd =
      arena->Alloc<double>(std::min(lanes.size(), kLaneBlock));
  for (size_t start = 0; start < lanes.size(); start += kLaneBlock) {
    const std::span<NodeId> block =
        lanes.subspan(start, std::min(kLaneBlock, lanes.size() - start));
    bool any_internal = true;
    while (any_internal) {
      any_internal = false;
      steps += block.size();
      rng->FillDoubles(rnd.first(block.size()));
      for (size_t i = 0; i < block.size(); ++i) {
        const Node& node = nodes[block[i]];
        if (node.left == kNullNode) continue;
        const NodeId next =
            rnd[i] * node.weight < nodes[node.left].weight ? node.left
                                                           : node.left + 1;
        __builtin_prefetch(&nodes[next]);
        block[i] = next;
        any_internal = true;
      }
    }
  }
  return steps;
}

size_t StaticBst::Height() const {
  // The tree is weight-agnostic balanced (midpoint splits), so height is
  // ceil(log2 n); compute it by walking the leftmost path.
  size_t height = 0;
  NodeId u = root();
  while (!IsLeaf(u)) {
    u = nodes_[u].left;
    ++height;
  }
  return height;
}

}  // namespace iqs
