// Semi-dynamic (insert-only) weighted range sampling via the logarithmic
// method (Bentley–Saxe), applied to the Theorem-3 structure — the generic
// dynamization route for Direction 1 (paper Section 9) when the workload
// is append-heavy.
//
// The set is partitioned into O(log n) static ChunkedRangeSampler
// components with sizes that are distinct powers of two. An insert adds a
// size-1 component and merges equal-sized components like binary
// addition: amortized O(log n) merge work per insert (each element is
// rebuilt once per level it passes through). A query resolves its
// interval in every component (O(log² n) binary searches + prefix-sum
// weight lookups), splits the budget Multinomial(s; component range
// weights), and delegates to each component's O(log + s_i) query —
// O(log² n + s) total, with exactly the Theorem-3 output law and full
// cross-query independence.
//
// Trade-off triangle (all in this library): this structure has the
// cheapest queries per sample among the dynamic options but no deletes;
// DynamicRangeSampler (treap) does deletes at O(log n) per sample;
// rebuilding a static sampler from scratch is the strawman.
//
// Keys must be distinct across the whole set (as in RangeSampler).

#ifndef IQS_RANGE_LOGARITHMIC_RANGE_SAMPLER_H_
#define IQS_RANGE_LOGARITHMIC_RANGE_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "iqs/range/chunked_range_sampler.h"
#include "iqs/util/batch_options.h"
#include "iqs/util/check.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace iqs {

// One key-interval query of a serving batch.
struct KeyBatchQuery {
  double lo = 0.0;
  double hi = 0.0;
  size_t s = 0;
};

// Flat result of a key-returning QueryBatch call: keys for query i occupy
// keys[offsets[i] .. offsets[i+1]).
struct KeyBatchResult {
  std::vector<double> keys;
  std::vector<size_t> offsets;    // size num_queries() + 1
  std::vector<uint8_t> resolved;  // 1 iff the interval was nonempty

  size_t num_queries() const { return resolved.size(); }

  std::span<const double> SamplesFor(size_t i) const {
    IQS_DCHECK(i + 1 < offsets.size());
    return std::span<const double>(keys).subspan(
        offsets[i], offsets[i + 1] - offsets[i]);
  }

  void Clear() {
    keys.clear();
    offsets.clear();
    resolved.clear();
  }
};

class LogarithmicRangeSampler {
 public:
  LogarithmicRangeSampler() = default;

  // Inserts an element; keys must be globally distinct (checked during
  // merges). Amortized O(log n) element-moves per insert.
  void Insert(double key, double weight);

  // Draws `s` independent weighted samples from keys in [lo, hi],
  // appending sampled KEYS to `out`; false when the range is empty.
  // O(log² n + s).
  bool Query(double lo, double hi, size_t s, Rng* rng,
             std::vector<double>* out) const;

  // Batched serving fast path: every query contributes one cover group
  // per component its interval intersects; the CoverExecutor performs the
  // multinomial splits, and draws are coalesced BY COMPONENT so all
  // queries' draws into one Bentley-Saxe component ride a single chunked
  // batched call. Canonical order (queries, rng, arena, opts, &result).
  void QueryBatch(std::span<const KeyBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, const BatchOptions& opts,
                  KeyBatchResult* result) const;

  // Convenience: default options.
  void QueryBatch(std::span<const KeyBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, KeyBatchResult* result) const;

  // Total weight of keys in [lo, hi]. O(log² n).
  double RangeWeight(double lo, double hi) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  // Number of live components (<= log2(n) + 1); exposed for tests.
  size_t num_components() const;

  size_t MemoryBytes() const;

 private:
  struct Component {
    std::vector<double> keys;     // sorted
    std::vector<double> weights;  // parallel
    std::vector<double> weight_prefix;
    std::unique_ptr<ChunkedRangeSampler> sampler;
  };

  // Builds prefix sums + sampler for a component whose keys/weights are
  // already sorted.
  static void Finalize(Component* component);

  // components_[i] is either null or holds exactly 2^i elements.
  std::vector<std::unique_ptr<Component>> components_;
  size_t size_ = 0;
};

}  // namespace iqs

#endif  // IQS_RANGE_LOGARITHMIC_RANGE_SAMPLER_H_
