// Semi-dynamic (insert-only) weighted range sampling via the logarithmic
// method (Bentley–Saxe), applied to the Theorem-3 structure — the generic
// dynamization route for Direction 1 (paper Section 9) when the workload
// is append-heavy.
//
// The set is partitioned into O(log n) static ChunkedRangeSampler
// components with sizes that are distinct powers of two. An insert adds a
// size-1 component and merges equal-sized components like binary
// addition: amortized O(log n) merge work per insert (each element is
// rebuilt once per level it passes through). A query resolves its
// interval in every component (O(log² n) binary searches + prefix-sum
// weight lookups), splits the budget Multinomial(s; component range
// weights), and delegates to each component's O(log + s_i) query —
// O(log² n + s) total, with exactly the Theorem-3 output law and full
// cross-query independence.
//
// Concurrency (epoch-based snapshot publication, util/epoch.h): the
// component set is an IMMUTABLE version behind a Versioned<> root. Every
// reader entry point pins one Snapshot and serves entirely against it, so
// queries never block on inserts and never observe a half-merged
// component set; each Insert builds the merged components privately
// (ChunkedRangeSampler builds run on the maintenance pool when one is
// attached), publishes a new version, and retires the consumed components
// through the grace-period machinery. Readers scale to any thread count;
// writers must be externally serialized only against each OTHER — Insert
// takes an internal mutex, so plain concurrent Insert calls are also
// safe. With no concurrent writer, the sample stream is byte-identical to
// the pre-epoch implementation under a fixed seed.
//
// Trade-off triangle (all in this library): this structure has the
// cheapest queries per sample among the dynamic options but no deletes;
// DynamicRangeSampler (treap) does deletes at O(log n) per sample;
// rebuilding a static sampler from scratch is the strawman.
//
// Keys must be distinct across the whole set (as in RangeSampler).

#ifndef IQS_RANGE_LOGARITHMIC_RANGE_SAMPLER_H_
#define IQS_RANGE_LOGARITHMIC_RANGE_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "iqs/range/chunked_range_sampler.h"
#include "iqs/util/batch_options.h"
#include "iqs/util/check.h"
#include "iqs/util/epoch.h"
#include "iqs/util/rng.h"
#include "iqs/util/thread_annotations.h"
#include "iqs/util/scratch_arena.h"

namespace iqs {

// One key-interval query of a serving batch.
struct KeyBatchQuery {
  double lo = 0.0;
  double hi = 0.0;
  size_t s = 0;
};

// Flat result of a key-returning QueryBatch call: keys for query i occupy
// keys[offsets[i] .. offsets[i+1]).
struct KeyBatchResult {
  std::vector<double> keys;
  std::vector<size_t> offsets;    // size num_queries() + 1
  std::vector<uint8_t> resolved;  // 1 iff the interval was nonempty

  size_t num_queries() const { return resolved.size(); }

  std::span<const double> SamplesFor(size_t i) const {
    IQS_DCHECK(i + 1 < offsets.size());
    return std::span<const double>(keys).subspan(
        offsets[i], offsets[i + 1] - offsets[i]);
  }

  void Clear() {
    keys.clear();
    offsets.clear();
    resolved.clear();
  }
};

class LogarithmicRangeSampler {
 public:
  LogarithmicRangeSampler();
  ~LogarithmicRangeSampler();

  // Versioned root + internal writer mutex make the type address-stable.
  LogarithmicRangeSampler(const LogarithmicRangeSampler&) = delete;
  LogarithmicRangeSampler& operator=(const LogarithmicRangeSampler&) = delete;

  // Attaches a maintenance pool: carry-merge component rebuilds (the
  // per-chunk alias-table builds) and retired-version teardown run as
  // ParallelFors over the pool instead of on the inserting thread. The
  // pool must outlive the sampler's last Insert and must not be
  // mid-ParallelFor when Insert is called (so don't share it with the
  // serving-side BatchOptions pool of an in-flight parallel batch). The
  // built components are bit-identical with or without a pool.
  void set_maintenance_pool(ThreadPool* pool) { pool_ = pool; }

  // Attaches a sink for the epoch counters (versions_published /
  // versions_reclaimed / reader_pins / rebuild_ns), recorded by the
  // serialized insert path into shard 0. Give this structure its own sink
  // — reader-side batches recording into the same sink would race.
  void set_telemetry(TelemetrySink* sink) { sink_ = sink; }

  // Inserts an element; keys must be globally distinct (checked during
  // merges). Amortized O(log n) element-moves per insert. Publishes a new
  // immutable version; in-flight readers keep serving the old one.
  void Insert(double key, double weight);

  // Draws `s` independent weighted samples from keys in [lo, hi],
  // appending sampled KEYS to `out`; false when the range is empty.
  // O(log² n + s). Runs against one pinned snapshot.
  bool Query(double lo, double hi, size_t s, Rng* rng,
             std::vector<double>* out) const;

  // Batched serving fast path: every query contributes one cover group
  // per component its interval intersects; the CoverExecutor performs the
  // multinomial splits, and draws are coalesced BY COMPONENT so all
  // queries' draws into one Bentley-Saxe component ride a single chunked
  // batched call. The ENTIRE batch executes against one pinned snapshot,
  // so concurrent inserts never skew a batch's law mid-flight. Canonical
  // order (queries, rng, arena, opts, &result).
  void QueryBatch(std::span<const KeyBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, const BatchOptions& opts,
                  KeyBatchResult* result) const;

  // Convenience: default options.
  void QueryBatch(std::span<const KeyBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, KeyBatchResult* result) const;

  // Total weight of keys in [lo, hi]. O(log² n).
  double RangeWeight(double lo, double hi) const;

  size_t size() const { return versions_.Acquire()->size; }
  bool empty() const { return size() == 0; }
  // Number of live components (<= log2(n) + 1); exposed for tests.
  size_t num_components() const;

  size_t MemoryBytes() const;

  // Epoch machinery, exposed for tests (retired_pending bounds,
  // reader-pin accounting) and for callers that want an explicit
  // Reclaim/Drain point.
  EpochManager* epoch_manager() const { return versions_.epoch_manager(); }
  uint64_t versions_published() const { return versions_.versions_published(); }

 private:
  struct Component {
    std::vector<double> keys;     // sorted
    std::vector<double> weights;  // parallel
    std::vector<double> weight_prefix;
    std::unique_ptr<ChunkedRangeSampler> sampler;
  };

  // An immutable published version: components[i] is null or points to a
  // component of exactly 2^i elements. Versions do NOT own components —
  // consecutive versions share the unconsumed ones; ownership is the
  // retire protocol's (a component is deleted once retired and its grace
  // period expires, or by ~LogarithmicRangeSampler for the live version).
  struct Version {
    std::vector<const Component*> components;
    size_t size = 0;
  };

  // Builds prefix sums + sampler for a component whose keys/weights are
  // already sorted; chunk builds run on `pool` when non-null.
  static void Finalize(Component* component, ThreadPool* pool);

  Versioned<Version> versions_;
  Mutex writer_mu_;  // serializes Insert
  ThreadPool* pool_ = nullptr;
  TelemetrySink* sink_ = nullptr;
  // Writer-side trackers turning the epoch totals into sink deltas.
  uint64_t last_reclaimed_ IQS_GUARDED_BY(writer_mu_) = 0;
  uint64_t last_pins_ IQS_GUARDED_BY(writer_mu_) = 0;
};

}  // namespace iqs

#endif  // IQS_RANGE_LOGARITHMIC_RANGE_SAMPLER_H_
