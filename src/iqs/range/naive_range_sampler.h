// The naive IQS baseline (paper Section 1): materialize the full query
// result S_q, then sample from it. Correct and independent, but the query
// costs O(|S_q| + s) — exactly what IQS structures exist to avoid. Used as
// the correctness oracle in tests and the baseline in benches E3/E5/E6.

#ifndef IQS_RANGE_NAIVE_RANGE_SAMPLER_H_
#define IQS_RANGE_NAIVE_RANGE_SAMPLER_H_

#include <span>
#include <vector>

#include "iqs/alias/alias_table.h"
#include "iqs/range/range_sampler.h"

namespace iqs {

class NaiveRangeSampler : public RangeSampler {
 public:
  NaiveRangeSampler(std::span<const double> keys,
                    std::span<const double> weights)
      : RangeSampler(keys), weights_(weights.begin(), weights.end()) {
    IQS_CHECK(keys.size() == weights.size());
  }

  void QueryPositions(size_t a, size_t b, size_t s, Rng* rng,
                      std::vector<size_t>* out) const override {
    IQS_CHECK(a <= b && b < n());
    if (s == 0) return;
    // "Report then sample": scan the whole result range.
    std::vector<double> result_weights(
        weights_.begin() + static_cast<ptrdiff_t>(a),
        weights_.begin() + static_cast<ptrdiff_t>(b) + 1);
    AliasTable table(result_weights);
    out->reserve(out->size() + s);
    for (size_t i = 0; i < s; ++i) out->push_back(a + table.Sample(rng));
  }

  size_t MemoryBytes() const override {
    return keys_.capacity() * sizeof(double) +
           weights_.capacity() * sizeof(double);
  }

  std::string_view name() const override { return "naive-report-sample"; }

 private:
  std::vector<double> weights_;
};

}  // namespace iqs

#endif  // IQS_RANGE_NAIVE_RANGE_SAMPLER_H_
