// Common interface for one-dimensional weighted range sampling structures
// (paper Sections 3-4).
//
// Problem (paper Section 3.2): a set S of n real keys, each with a positive
// weight. A query gives an interval q = [lo, hi] and a sample size s, and
// receives s independent weighted samples from S ∩ q; outputs of all
// queries are mutually independent.
//
// All implementations index elements by their *position* in sorted key
// order and return positions; Query() maps a real interval onto a position
// range with two binary searches and delegates to QueryPositions(). This
// keeps the structures composable — Theorem 3 runs a Lemma-2 structure over
// chunk positions, and Lemma 4 runs one over Euler-tour positions.

#ifndef IQS_RANGE_RANGE_SAMPLER_H_
#define IQS_RANGE_RANGE_SAMPLER_H_

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "iqs/util/batch_options.h"
#include "iqs/util/check.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace iqs {

// One query of a serving batch: draw `s` independent weighted samples from
// S ∩ [lo, hi].
struct BatchQuery {
  double lo = 0.0;
  double hi = 0.0;
  size_t s = 0;
};

// A position-space batch request (interval already resolved).
struct PositionQuery {
  size_t a = 0;
  size_t b = 0;
  size_t s = 0;
};

// Flat result of a QueryBatch call. Samples for query i occupy
// positions[offsets[i] .. offsets[i+1]); an unresolved (empty-interval)
// query has resolved[i] == 0 and an empty slice. Reusing one BatchResult
// across calls amortizes its buffers away.
struct BatchResult {
  std::vector<size_t> positions;
  std::vector<size_t> offsets;   // size num_queries() + 1
  std::vector<uint8_t> resolved;  // 1 iff the query interval was nonempty

  size_t num_queries() const { return resolved.size(); }

  std::span<const size_t> SamplesFor(size_t i) const {
    IQS_DCHECK(i + 1 < offsets.size());
    return std::span<const size_t>(positions)
        .subspan(offsets[i], offsets[i + 1] - offsets[i]);
  }

  void Clear() {
    positions.clear();
    offsets.clear();
    resolved.clear();
  }
};

class RangeSampler {
 public:
  virtual ~RangeSampler() = default;

  RangeSampler(const RangeSampler&) = delete;
  RangeSampler& operator=(const RangeSampler&) = delete;

  size_t n() const { return keys_.size(); }
  const std::vector<double>& keys() const { return keys_; }

  // Draws `s` independent weighted samples from the elements at positions
  // [a, b] (inclusive, a <= b < n), appending sampled positions to `out`.
  //
  // ORDERING CONTRACT: the s draws form an i.i.d. MULTISET; the order in
  // which they are appended is unspecified (implementations group them by
  // internal structure, e.g. by chunk). Callers that need an i.i.d.
  // SEQUENCE (e.g. "take the first distinct values") must shuffle first —
  // see sampling/wor_query.cc.
  virtual void QueryPositions(size_t a, size_t b, size_t s, Rng* rng,
                              std::vector<size_t>* out) const = 0;

  // Draws `s` independent weighted samples from S ∩ [lo, hi], appending
  // sampled positions to `out`. Returns false (and appends nothing) when
  // the interval contains no element. O(log n) on top of QueryPositions.
  bool Query(double lo, double hi, size_t s, Rng* rng,
             std::vector<size_t>* out) const;

  // Resolves [lo, hi] to the inclusive position range it covers. Returns
  // false if empty.
  bool ResolveInterval(double lo, double hi, size_t* a, size_t* b) const;

  // Batched serving fast path — THE CANONICAL BATCH SIGNATURE: every
  // batch entry point in the library (1-d, multidim, tree, integer) takes
  // (queries, rng, arena, options, &result) in this order. Resolves every
  // query interval once, then hands the resolved requests to
  // QueryPositionsBatch in one call; the result is written into `result`
  // (cleared first) as a flat buffer with per-query offsets. All scratch
  // comes from `arena`; with a reused arena and result the steady state
  // performs zero heap allocations beyond the result buffers' retained
  // capacity. Each query's draws obey the same ORDERING CONTRACT as
  // QueryPositions (i.i.d. multiset, unspecified order), and draws are
  // independent across queries of the batch.
  //
  // opts.num_threads >= 1 selects the deterministic parallel mode (see
  // BatchOptions): same per-query output law and ordering contract,
  // output bit-identical for every thread count under a fixed seed, but a
  // different stream assignment than the sequential default.
  // opts.telemetry attaches an observability sink (one latency sample per
  // batch call plus the pipeline counters; never perturbs the Rng).
  void QueryBatch(std::span<const BatchQuery> queries, Rng* rng,
                  ScratchArena* arena, const BatchOptions& opts,
                  BatchResult* result) const;

  // Convenience: default options.
  void QueryBatch(std::span<const BatchQuery> queries, Rng* rng,
                  ScratchArena* arena, BatchResult* result) const;

  // Position-space batch hook, in the canonical argument order. Appends,
  // for each query in order, exactly q.s sampled positions to `out`
  // (contiguous per query). With sequential opts the base implementation
  // loops over QueryPositions; subclasses override it with grouped
  // multinomial sampling over the canonical cover, which turns s
  // independent O(log n) descents into O(cover + s) grouped work. In
  // parallel mode queries are sharded over a worker pool under per-query
  // RNG substreams; the base implementation shards whole requests over
  // QueryPositions, cover-based subclasses run their grouped kernels per
  // query through CoverExecutor::ExecuteParallel instead.
  virtual void QueryPositionsBatch(std::span<const PositionQuery> queries,
                                   Rng* rng, ScratchArena* arena,
                                   const BatchOptions& opts,
                                   std::vector<size_t>* out) const;

  // Convenience: default options.
  void QueryPositionsBatch(std::span<const PositionQuery> queries, Rng* rng,
                           ScratchArena* arena,
                           std::vector<size_t>* out) const {
    QueryPositionsBatch(queries, rng, arena, BatchOptions{}, out);
  }

  // Heap footprint, for the space experiment (DESIGN.md E4).
  virtual size_t MemoryBytes() const = 0;

  virtual std::string_view name() const = 0;

 protected:
  // `keys` must be strictly increasing and nonempty.
  explicit RangeSampler(std::span<const double> keys);

  std::vector<double> keys_;
};

}  // namespace iqs

#endif  // IQS_RANGE_RANGE_SAMPLER_H_
