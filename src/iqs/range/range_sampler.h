// Common interface for one-dimensional weighted range sampling structures
// (paper Sections 3-4).
//
// Problem (paper Section 3.2): a set S of n real keys, each with a positive
// weight. A query gives an interval q = [lo, hi] and a sample size s, and
// receives s independent weighted samples from S ∩ q; outputs of all
// queries are mutually independent.
//
// All implementations index elements by their *position* in sorted key
// order and return positions; Query() maps a real interval onto a position
// range with two binary searches and delegates to QueryPositions(). This
// keeps the structures composable — Theorem 3 runs a Lemma-2 structure over
// chunk positions, and Lemma 4 runs one over Euler-tour positions.

#ifndef IQS_RANGE_RANGE_SAMPLER_H_
#define IQS_RANGE_RANGE_SAMPLER_H_

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "iqs/util/check.h"
#include "iqs/util/rng.h"

namespace iqs {

class RangeSampler {
 public:
  virtual ~RangeSampler() = default;

  RangeSampler(const RangeSampler&) = delete;
  RangeSampler& operator=(const RangeSampler&) = delete;

  size_t n() const { return keys_.size(); }
  const std::vector<double>& keys() const { return keys_; }

  // Draws `s` independent weighted samples from the elements at positions
  // [a, b] (inclusive, a <= b < n), appending sampled positions to `out`.
  //
  // ORDERING CONTRACT: the s draws form an i.i.d. MULTISET; the order in
  // which they are appended is unspecified (implementations group them by
  // internal structure, e.g. by chunk). Callers that need an i.i.d.
  // SEQUENCE (e.g. "take the first distinct values") must shuffle first —
  // see sampling/wor_query.cc.
  virtual void QueryPositions(size_t a, size_t b, size_t s, Rng* rng,
                              std::vector<size_t>* out) const = 0;

  // Draws `s` independent weighted samples from S ∩ [lo, hi], appending
  // sampled positions to `out`. Returns false (and appends nothing) when
  // the interval contains no element. O(log n) on top of QueryPositions.
  bool Query(double lo, double hi, size_t s, Rng* rng,
             std::vector<size_t>* out) const;

  // Resolves [lo, hi] to the inclusive position range it covers. Returns
  // false if empty.
  bool ResolveInterval(double lo, double hi, size_t* a, size_t* b) const;

  // Heap footprint, for the space experiment (DESIGN.md E4).
  virtual size_t MemoryBytes() const = 0;

  virtual std::string_view name() const = 0;

 protected:
  // `keys` must be strictly increasing and nonempty.
  explicit RangeSampler(std::span<const double> keys);

  std::vector<double> keys_;
};

}  // namespace iqs

#endif  // IQS_RANGE_RANGE_SAMPLER_H_
