#include "iqs/range/bst_range_sampler.h"

#include "iqs/alias/alias_table.h"
#include "iqs/cover/cover_executor.h"
#include "iqs/sampling/multinomial.h"

namespace iqs {

BstRangeSampler::BstRangeSampler(std::span<const double> keys,
                                 std::span<const double> weights)
    : RangeSampler(keys), tree_(weights) {
  IQS_CHECK(keys.size() == weights.size());
}

void BstRangeSampler::QueryPositions(size_t a, size_t b, size_t s, Rng* rng,
                                     std::vector<size_t>* out) const {
  IQS_CHECK(a <= b && b < n());
  if (s == 0) return;
  // Per-call temporaries hoisted into thread-local scratch: steady-state
  // queries reuse capacity instead of round-tripping the heap.
  thread_local std::vector<StaticBst::NodeId> cover;
  thread_local std::vector<double> cover_weights;
  thread_local AliasTable cover_alias;
  cover.clear();
  tree_.CanonicalCover(a, b, &cover);

  // Alias table over the canonical nodes, then tree sampling below the
  // chosen node for every draw (paper Section 3.2).
  cover_weights.clear();
  cover_weights.reserve(cover.size());
  for (StaticBst::NodeId u : cover) {
    cover_weights.push_back(tree_.NodeWeight(u));
  }
  cover_alias.Build(cover_weights);
  out->reserve(out->size() + s);
  for (size_t i = 0; i < s; ++i) {
    const StaticBst::NodeId u = cover[cover_alias.Sample(rng)];
    out->push_back(tree_.SampleLeaf(u, rng));
  }
}

void BstRangeSampler::QueryPositionsBatch(
    std::span<const PositionQuery> queries, Rng* rng, ScratchArena* arena,
    const BatchOptions& opts, std::vector<size_t>* out) const {
  // Cover enumeration only; the CoverExecutor owns the batched pipeline
  // (multinomial split per query, flat offsets, arena scratch). The draw
  // backend lines up ONE descent lane per requested sample across the
  // entire batch and runs them all through a single grouped
  // DescendToLeaves: with thousands of independent lanes the
  // bottom-of-tree node loads (the cache misses that dominate the
  // single-query path) overlap instead of serializing, and shared
  // top-of-subtree nodes stay hot across every query of the batch.
  thread_local CoverPlan plan;
  plan.Clear();
  const size_t max_cover = tree_.MaxCoverSize();
  const std::span<StaticBst::NodeId> cover =
      arena->Alloc<StaticBst::NodeId>(max_cover);
  for (const PositionQuery& q : queries) {
    plan.BeginQuery(q.s);
    if (q.s == 0) continue;
    IQS_DCHECK(q.a <= q.b && q.b < n());
    const size_t t = tree_.CanonicalCover(q.a, q.b, cover);
    for (size_t i = 0; i < t; ++i) {
      const StaticBst::NodeId u = cover[i];
      plan.AddGroup(tree_.RangeLo(u), tree_.RangeHi(u), tree_.NodeWeight(u),
                    u);
    }
  }

  if (!opts.sequential()) {
    // Parallel mode: the same grouped descent, but one DescendToLeaves per
    // query under the query's substream, so the lane order (and therefore
    // the randomness consumption) is a pure function of the query — any
    // thread count produces identical bytes.
    CoverExecutor::ExecuteParallel(
        plan, rng, arena, opts,
        [this, &opts](const CoverPlan& p, const CoverSplit& split,
                      std::span<size_t> dst, size_t q, size_t worker,
                      Rng* qrng, ScratchArena* wa) {
          const size_t fg = p.first_group(q);
          const size_t eg = p.end_group(q);
          const size_t qs = split.offsets[eg] - split.offsets[fg];
          const std::span<StaticBst::NodeId> lanes =
              wa->Alloc<StaticBst::NodeId>(qs);
          const std::span<const CoverGroup> groups = p.groups();
          size_t lane = 0;
          for (size_t g = fg; g < eg; ++g) {
            const auto u = static_cast<StaticBst::NodeId>(groups[g].tag);
            for (uint32_t k = 0; k < split.counts[g]; ++k) lanes[lane++] = u;
          }
          IQS_DCHECK(lane == qs);
          const size_t steps = tree_.DescendToLeaves(lanes, qrng, wa);
          if (opts.telemetry != nullptr) {
            opts.telemetry->shard(worker)->stats.nodes_visited += steps;
          }
          const size_t base = split.offsets[fg];
          for (size_t i = 0; i < qs; ++i) {
            dst[base + i] = tree_.RangeLo(lanes[i]);
          }
        },
        out);
    return;
  }

  CoverExecutor::Execute(
      plan, rng, arena, opts,
      [&](const CoverPlan& p, const CoverSplit& split, std::span<size_t> dst) {
        const std::span<StaticBst::NodeId> lanes =
            arena->Alloc<StaticBst::NodeId>(split.total);
        const std::span<const CoverGroup> groups = p.groups();
        size_t lane = 0;
        for (size_t g = 0; g < groups.size(); ++g) {
          const auto u = static_cast<StaticBst::NodeId>(groups[g].tag);
          for (uint32_t k = 0; k < split.counts[g]; ++k) lanes[lane++] = u;
        }
        IQS_DCHECK(lane == split.total);
        const size_t steps = tree_.DescendToLeaves(lanes, rng, arena);
        if (opts.telemetry != nullptr) {
          opts.telemetry->shard(0)->stats.nodes_visited += steps;
        }
        for (size_t i = 0; i < split.total; ++i) {
          dst[i] = tree_.RangeLo(lanes[i]);
        }
      },
      out);
}

}  // namespace iqs
