#include "iqs/range/bst_range_sampler.h"

#include "iqs/alias/alias_table.h"

namespace iqs {

BstRangeSampler::BstRangeSampler(std::span<const double> keys,
                                 std::span<const double> weights)
    : RangeSampler(keys), tree_(weights) {
  IQS_CHECK(keys.size() == weights.size());
}

void BstRangeSampler::QueryPositions(size_t a, size_t b, size_t s, Rng* rng,
                                     std::vector<size_t>* out) const {
  IQS_CHECK(a <= b && b < n());
  if (s == 0) return;
  std::vector<StaticBst::NodeId> cover;
  tree_.CanonicalCover(a, b, &cover);

  // Alias table over the canonical nodes, then tree sampling below the
  // chosen node for every draw (paper Section 3.2).
  std::vector<double> cover_weights;
  cover_weights.reserve(cover.size());
  for (StaticBst::NodeId u : cover) {
    cover_weights.push_back(tree_.NodeWeight(u));
  }
  AliasTable cover_alias(cover_weights);
  out->reserve(out->size() + s);
  for (size_t i = 0; i < s; ++i) {
    const StaticBst::NodeId u = cover[cover_alias.Sample(rng)];
    out->push_back(tree_.SampleLeaf(u, rng));
  }
}

}  // namespace iqs
