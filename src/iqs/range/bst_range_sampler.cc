#include "iqs/range/bst_range_sampler.h"

#include "iqs/alias/alias_table.h"
#include "iqs/sampling/multinomial.h"

namespace iqs {

BstRangeSampler::BstRangeSampler(std::span<const double> keys,
                                 std::span<const double> weights)
    : RangeSampler(keys), tree_(weights) {
  IQS_CHECK(keys.size() == weights.size());
}

void BstRangeSampler::QueryPositions(size_t a, size_t b, size_t s, Rng* rng,
                                     std::vector<size_t>* out) const {
  IQS_CHECK(a <= b && b < n());
  if (s == 0) return;
  // Per-call temporaries hoisted into thread-local scratch: steady-state
  // queries reuse capacity instead of round-tripping the heap.
  thread_local std::vector<StaticBst::NodeId> cover;
  thread_local std::vector<double> cover_weights;
  thread_local AliasTable cover_alias;
  cover.clear();
  tree_.CanonicalCover(a, b, &cover);

  // Alias table over the canonical nodes, then tree sampling below the
  // chosen node for every draw (paper Section 3.2).
  cover_weights.clear();
  cover_weights.reserve(cover.size());
  for (StaticBst::NodeId u : cover) {
    cover_weights.push_back(tree_.NodeWeight(u));
  }
  cover_alias.Build(cover_weights);
  out->reserve(out->size() + s);
  for (size_t i = 0; i < s; ++i) {
    const StaticBst::NodeId u = cover[cover_alias.Sample(rng)];
    out->push_back(tree_.SampleLeaf(u, rng));
  }
}

void BstRangeSampler::QueryPositionsBatch(
    std::span<const PositionQuery> queries, Rng* rng, ScratchArena* arena,
    std::vector<size_t>* out) const {
  // Multinomial fast path (paper Section 4.1 applied to tree sampling):
  // split each query's budget across its canonical cover in one draw, so
  // the per-sample cover pick disappears — then line up ONE descent lane
  // per requested sample across the entire batch and run them all through
  // a single grouped DescendToLeaves. With thousands of independent lanes
  // the bottom-of-tree node loads (the cache misses that dominate the
  // single-query path) overlap instead of serializing, and shared
  // top-of-subtree nodes stay hot across every query of the batch.
  size_t total = 0;
  for (const PositionQuery& q : queries) total += q.s;
  if (total == 0) return;

  const std::span<StaticBst::NodeId> lanes =
      arena->Alloc<StaticBst::NodeId>(total);
  const size_t max_cover = tree_.MaxCoverSize();
  size_t lane = 0;
  for (const PositionQuery& q : queries) {
    if (q.s == 0) continue;
    IQS_CHECK(q.a <= q.b && q.b < n());
    const std::span<StaticBst::NodeId> cover =
        arena->Alloc<StaticBst::NodeId>(max_cover);
    const size_t t = tree_.CanonicalCover(q.a, q.b, cover);
    const std::span<double> cover_weights = arena->Alloc<double>(t);
    for (size_t i = 0; i < t; ++i) {
      cover_weights[i] = tree_.NodeWeight(cover[i]);
    }
    const std::span<uint32_t> counts = arena->Alloc<uint32_t>(t);
    MultinomialSplitScratch(cover_weights, q.s, rng, arena, counts);
    for (size_t i = 0; i < t; ++i) {
      for (uint32_t k = 0; k < counts[i]; ++k) lanes[lane++] = cover[i];
    }
  }
  IQS_DCHECK(lane == total);

  tree_.DescendToLeaves(lanes, rng, arena);

  const size_t base = out->size();
  out->resize(base + total);
  const std::span<size_t> dst = std::span<size_t>(*out).subspan(base, total);
  for (size_t i = 0; i < total; ++i) dst[i] = tree_.RangeLo(lanes[i]);
}

}  // namespace iqs
