#include "iqs/range/logarithmic_range_sampler.h"

#include <algorithm>

#include "iqs/cover/cover_executor.h"
#include "iqs/sampling/multinomial.h"
#include "iqs/util/check.h"
#include "iqs/util/telemetry.h"

namespace iqs {

LogarithmicRangeSampler::LogarithmicRangeSampler()
    : versions_(std::make_unique<Version>()) {}

LogarithmicRangeSampler::~LogarithmicRangeSampler() {
  // Readers must be gone (checked by ~EpochManager). Drain frees every
  // retired component/version; the live version's components are then
  // exclusively ours.
  EpochManager* epoch = versions_.epoch_manager();
  epoch->Drain();
  for (const Component* component : versions_.writer_root()->components) {
    delete component;
  }
}

void LogarithmicRangeSampler::Finalize(Component* component,
                                       ThreadPool* pool) {
  const size_t m = component->keys.size();
  component->weight_prefix.assign(m + 1, 0.0);
  for (size_t i = 0; i < m; ++i) {
    component->weight_prefix[i + 1] =
        component->weight_prefix[i] + component->weights[i];
  }
  component->sampler = std::make_unique<ChunkedRangeSampler>(
      component->keys, component->weights, /*chunk_size=*/0, pool);
}

void LogarithmicRangeSampler::Insert(double key, double weight) {
  IQS_CHECK(weight > 0.0);
  MutexLock lock(&writer_mu_);
  const uint64_t start_ns = sink_ != nullptr ? TelemetryNowNs() : 0;

  // Build the next version privately: start from the current component
  // list (shared pointers — unconsumed components carry over), run the
  // binary-addition carry merge on it, and remember which resident
  // components the carry consumed.
  const Version* cur = versions_.writer_root();
  auto next = std::make_unique<Version>();
  next->components = cur->components;
  next->size = cur->size + 1;
  std::vector<const Component*> consumed;

  // A carry component of size 2^level, merged upward like binary addition.
  auto carry = std::make_unique<Component>();
  carry->keys = {key};
  carry->weights = {weight};
  size_t level = 0;
  while (true) {
    if (level == next->components.size()) next->components.push_back(nullptr);
    if (next->components[level] == nullptr) {
      Finalize(carry.get(), pool_);
      next->components[level] = carry.release();
      break;
    }
    // Merge the resident component into the carry (both sorted).
    const Component& resident = *next->components[level];
    auto merged = std::make_unique<Component>();
    const size_t total = resident.keys.size() + carry->keys.size();
    merged->keys.reserve(total);
    merged->weights.reserve(total);
    size_t i = 0;
    size_t j = 0;
    while (i < resident.keys.size() || j < carry->keys.size()) {
      const bool take_resident =
          j == carry->keys.size() ||
          (i < resident.keys.size() && resident.keys[i] < carry->keys[j]);
      if (take_resident) {
        merged->keys.push_back(resident.keys[i]);
        merged->weights.push_back(resident.weights[i]);
        ++i;
      } else {
        IQS_DCHECK(i == resident.keys.size() ||
                  resident.keys[i] > carry->keys[j]);  // distinct keys
        merged->keys.push_back(carry->keys[j]);
        merged->weights.push_back(carry->weights[j]);
        ++j;
      }
    }
    consumed.push_back(next->components[level]);
    next->components[level] = nullptr;
    carry = std::move(merged);
    ++level;
  }

  // Publish, then retire what the merge consumed. Ordering matters: a
  // component may be retired only once no reader can REACH it from the
  // root, which the root swap inside Publish establishes. In-flight
  // snapshots can still HOLD it — that is exactly what the grace period
  // covers.
  EpochManager* epoch = versions_.epoch_manager();
  versions_.Publish(std::move(next), pool_);
  for (const Component* component : consumed) {
    epoch->Retire(
        const_cast<void*>(static_cast<const void*>(component)),
        [](void* p) { delete static_cast<const Component*>(p); });
  }
  if (!consumed.empty()) epoch->Reclaim(pool_);

  if (sink_ != nullptr) {
    // Serialized writer path; shard 0 of the structure's own sink.
    QueryStats* stats = &sink_->shard(0)->stats;
    stats->versions_published += 1;
    const uint64_t reclaimed = epoch->reclaimed();
    stats->versions_reclaimed += reclaimed - last_reclaimed_;
    last_reclaimed_ = reclaimed;
    const uint64_t pins = epoch->reader_pins();
    stats->reader_pins += pins - last_pins_;
    last_pins_ = pins;
    stats->rebuild_ns += TelemetryNowNs() - start_ns;
  }
}

bool LogarithmicRangeSampler::Query(double lo, double hi, size_t s, Rng* rng,
                                    std::vector<double>* out) const {
  const Snapshot<Version> snap = versions_.Acquire();
  if (lo > hi || snap->size == 0) return false;
  // Resolve the interval in every component; collect range weights.
  struct ActivePart {
    const Component* component;
    size_t a;
    size_t b;
  };
  std::vector<ActivePart> parts;
  std::vector<double> part_weights;
  for (const Component* component : snap->components) {
    if (component == nullptr) continue;
    size_t a = 0;
    size_t b = 0;
    if (!component->sampler->ResolveInterval(lo, hi, &a, &b)) continue;
    parts.push_back({component, a, b});
    part_weights.push_back(component->weight_prefix[b + 1] -
                           component->weight_prefix[a]);
  }
  if (parts.empty()) return false;
  if (s == 0) return true;

  const std::vector<uint32_t> counts = MultinomialSplit(part_weights, s, rng);
  out->reserve(out->size() + s);
  std::vector<size_t> positions;
  for (size_t p = 0; p < parts.size(); ++p) {
    if (counts[p] == 0) continue;
    positions.clear();
    parts[p].component->sampler->QueryPositions(parts[p].a, parts[p].b,
                                                counts[p], rng, &positions);
    for (size_t pos : positions) {
      out->push_back(parts[p].component->keys[pos]);
    }
  }
  return true;
}

void LogarithmicRangeSampler::QueryBatch(std::span<const KeyBatchQuery> queries,
                                         Rng* rng, ScratchArena* arena,
                                         KeyBatchResult* result) const {
  QueryBatch(queries, rng, arena, BatchOptions{}, result);
}

void LogarithmicRangeSampler::QueryBatch(std::span<const KeyBatchQuery> queries,
                                         Rng* rng, ScratchArena* arena,
                                         const BatchOptions& opts,
                                         KeyBatchResult* result) const {
  const uint64_t start_ns = opts.telemetry != nullptr ? TelemetryNowNs() : 0;
  auto record_latency = [&] {
    if (opts.telemetry != nullptr) {
      opts.telemetry->shard(0)->latency.Record(TelemetryNowNs() - start_ns);
    }
  };
  // One snapshot serves the whole batch: every query of the batch sees
  // the same component set no matter how many versions a concurrent
  // inserter publishes meanwhile.
  const Snapshot<Version> snap = versions_.Acquire();
  result->Clear();
  arena->Reset();
  struct Part {
    const Component* component;
    size_t level;  // index in Version::components — the coalescing key
    size_t a;
    size_t b;
  };
  thread_local CoverPlan plan;
  thread_local std::vector<Part> parts;
  thread_local std::vector<size_t> positions;
  plan.Clear();
  parts.clear();
  const size_t nq = queries.size();
  result->resolved.resize(nq);
  result->offsets.resize(nq + 1);
  size_t total_samples = 0;
  for (size_t i = 0; i < nq; ++i) {
    result->offsets[i] = total_samples;
    plan.BeginQuery(queries[i].s);
    if (queries[i].lo > queries[i].hi || snap->size == 0) {
      result->resolved[i] = 0;
      continue;
    }
    const size_t part_base = parts.size();
    for (size_t level = 0; level < snap->components.size(); ++level) {
      const Component* component = snap->components[level];
      if (component == nullptr) continue;
      size_t a = 0;
      size_t b = 0;
      if (!component->sampler->ResolveInterval(queries[i].lo, queries[i].hi,
                                               &a, &b)) {
        continue;
      }
      parts.push_back({component, level, a, b});
    }
    const bool ok = parts.size() > part_base;
    result->resolved[i] = ok ? 1 : 0;
    if (!ok || queries[i].s == 0) continue;
    for (size_t j = part_base; j < parts.size(); ++j) {
      const Part& part = parts[j];
      plan.AddGroup(part.a, part.b,
                    part.component->weight_prefix[part.b + 1] -
                        part.component->weight_prefix[part.a],
                    j);
    }
    total_samples += queries[i].s;
  }
  result->offsets[nq] = total_samples;

  const CoverSplit split = CoverExecutor::Split(plan, rng, arena,
                                                opts.telemetry);
  IQS_CHECK(split.total == total_samples);
  result->keys.resize(total_samples);
  if (opts.telemetry != nullptr) {
    // Manual serve below: this function owns samples_emitted / arena hwm.
    QueryStats* stats = &opts.telemetry->shard(0)->stats;
    stats->samples_emitted += split.total;
    if (arena->capacity_bytes() > stats->arena_bytes_hwm) {
      stats->arena_bytes_hwm = arena->capacity_bytes();
    }
  }
  if (total_samples == 0) {
    record_latency();
    return;
  }

  // Coalesce nonzero groups by component: every query's draws into the
  // same Bentley-Saxe component share one chunked batched call, then
  // scatter back to each group's flat slice.
  const std::span<const CoverGroup> groups = plan.groups();
  const std::span<uint32_t> order = arena->Alloc<uint32_t>(groups.size());
  size_t active = 0;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (split.counts[g] > 0) order[active++] = static_cast<uint32_t>(g);
  }
  // Deterministic coalescing key: the component's Bentley-Saxe level, the
  // same ascending order the single-query path serves in. (Sorting by
  // component POINTER would also coalesce, but heap addresses make the
  // rng consumption order — and so the emitted byte stream — depend on
  // allocator history; level order keeps fixed-seed batches reproducible
  // across builds and across publish/reclaim cycles.)
  std::sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(active),
            [&](uint32_t ga, uint32_t gb) {
              const size_t la = parts[groups[ga].tag].level;
              const size_t lb = parts[groups[gb].tag].level;
              return la != lb ? la < lb : ga < gb;
            });

  const std::span<PositionQuery> requests =
      arena->Alloc<PositionQuery>(active);
  for (size_t run = 0; run < active;) {
    const Component* component = parts[groups[order[run]].tag].component;
    size_t run_end = run;
    size_t m = 0;
    while (run_end < active &&
           parts[groups[order[run_end]].tag].component == component) {
      const Part& part = parts[groups[order[run_end]].tag];
      requests[m++] = PositionQuery{
          part.a, part.b, static_cast<size_t>(split.counts[order[run_end]])};
      ++run_end;
    }
    positions.clear();
    component->sampler->QueryPositionsBatch(requests.first(m), rng, arena,
                                            &positions);
    size_t cursor = 0;
    for (size_t k = run; k < run_end; ++k) {
      const uint32_t g = order[k];
      const size_t dst = split.offsets[g];
      for (uint32_t d = 0; d < split.counts[g]; ++d) {
        result->keys[dst + d] = component->keys[positions[cursor++]];
      }
    }
    IQS_DCHECK(cursor == positions.size());
    run = run_end;
  }
  record_latency();
}

double LogarithmicRangeSampler::RangeWeight(double lo, double hi) const {
  if (lo > hi) return 0.0;
  const Snapshot<Version> snap = versions_.Acquire();
  double total = 0.0;
  for (const Component* component : snap->components) {
    if (component == nullptr) continue;
    size_t a = 0;
    size_t b = 0;
    if (!component->sampler->ResolveInterval(lo, hi, &a, &b)) continue;
    total += component->weight_prefix[b + 1] - component->weight_prefix[a];
  }
  return total;
}

size_t LogarithmicRangeSampler::num_components() const {
  const Snapshot<Version> snap = versions_.Acquire();
  size_t count = 0;
  for (const Component* component : snap->components) {
    count += (component != nullptr);
  }
  return count;
}

size_t LogarithmicRangeSampler::MemoryBytes() const {
  const Snapshot<Version> snap = versions_.Acquire();
  size_t bytes = snap->components.capacity() * sizeof(const Component*);
  for (const Component* component : snap->components) {
    if (component == nullptr) continue;
    bytes += component->keys.capacity() * sizeof(double) +
             component->weights.capacity() * sizeof(double) +
             component->weight_prefix.capacity() * sizeof(double) +
             component->sampler->MemoryBytes();
  }
  return bytes;
}

}  // namespace iqs
