// Fenwick (binary indexed) tree over doubles: point update, prefix sum,
// range sum, and weighted search — the "range sum structure" of paper
// Section 4.2 and the backbone of the O(log n) dynamic sampler.

#ifndef IQS_RANGE_FENWICK_TREE_H_
#define IQS_RANGE_FENWICK_TREE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "iqs/util/check.h"

namespace iqs {

class FenwickTree {
 public:
  FenwickTree() = default;

  // A tree over `n` zero-initialized positions.
  explicit FenwickTree(size_t n) : tree_(n + 1, 0.0) {}

  // O(n) bulk construction from initial values.
  explicit FenwickTree(std::span<const double> values)
      : tree_(values.size() + 1, 0.0) {
    for (size_t i = 0; i < values.size(); ++i) tree_[i + 1] = values[i];
    for (size_t i = 1; i < tree_.size(); ++i) {
      const size_t parent = i + (i & (~i + 1));
      if (parent < tree_.size()) tree_[parent] += tree_[i];
    }
  }

  size_t size() const { return tree_.empty() ? 0 : tree_.size() - 1; }

  // Adds `delta` to position `i` (0-based). O(log n).
  void Add(size_t i, double delta) {
    IQS_DCHECK(i < size());
    for (size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
      tree_[j] += delta;
    }
  }

  // Sum of positions [0, i) — i.e. the first `i` values. O(log n).
  double PrefixSum(size_t i) const {
    IQS_DCHECK(i <= size());
    double sum = 0.0;
    for (size_t j = i; j > 0; j -= j & (~j + 1)) sum += tree_[j];
    return sum;
  }

  // Sum of positions [lo, hi] inclusive. O(log n).
  double RangeSum(size_t lo, size_t hi) const {
    IQS_DCHECK(lo <= hi && hi < size());
    return PrefixSum(hi + 1) - PrefixSum(lo);
  }

  double TotalSum() const { return PrefixSum(size()); }

  // Returns the smallest index i such that PrefixSum(i + 1) > target,
  // i.e. the position selected by mass `target` in [0, TotalSum()).
  // O(log n) via top-down descent over the implicit tree.
  size_t SearchPrefix(double target) const {
    IQS_DCHECK(size() > 0);
    size_t pos = 0;
    size_t mask = 1;
    while ((mask << 1) <= size()) mask <<= 1;
    for (; mask > 0; mask >>= 1) {
      const size_t next = pos + mask;
      if (next < tree_.size() && tree_[next] <= target) {
        target -= tree_[next];
        pos = next;
      }
    }
    // pos is the count of positions whose cumulative mass is <= target.
    return pos < size() ? pos : size() - 1;
  }

  size_t MemoryBytes() const { return tree_.capacity() * sizeof(double); }

 private:
  std::vector<double> tree_;
};

}  // namespace iqs

#endif  // IQS_RANGE_FENWICK_TREE_H_
