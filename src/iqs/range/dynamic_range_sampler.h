// Dynamic weighted range sampling (paper Section 4.3 + Section 9,
// Direction 1): Hu et al. [18] showed the (WR) range sampling structure
// can support updates in O(log n); the static chunked structure of
// Theorem 3 cannot be dynamized easily because the alias tables resist
// updates. This structure fills that gap in the library: a treap keyed by
// element value whose nodes carry subtree weights.
//
//   * Insert / Delete: expected O(log n) (treap rebalancing, weight
//     resummation on the update path).
//   * Query(lo, hi, s): expected O(log n + s log n) — the canonical
//     decomposition of [lo, hi] is found by descent, an alias table is
//     built over the O(log n) canonical subtrees, and each sample walks
//     down one subtree choosing children by weight (tree sampling,
//     Section 3.2).
//
// The per-sample O(log n) is the price of dynamism here (matching the
// basic Section-3.2 structure); bench_dynamic compares it against the
// static O(log n + s) structures and the rebuild strawman.

#ifndef IQS_RANGE_DYNAMIC_RANGE_SAMPLER_H_
#define IQS_RANGE_DYNAMIC_RANGE_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "iqs/util/rng.h"

namespace iqs {

class DynamicRangeSampler {
 public:
  // `rng` seeds treap priorities and must outlive the structure.
  explicit DynamicRangeSampler(Rng* rng) : priority_rng_(rng->Split()) {}

  // Inserts an element with the given key and positive weight.
  // Duplicate keys are allowed (each insert is a distinct element).
  // Expected O(log n).
  void Insert(double key, double weight);

  // Deletes ONE element with this exact key (the topmost in the treap);
  // returns false if no such key exists. Expected O(log n).
  bool Delete(double key);

  // Changes the weight of one element with this key; returns false if
  // absent. Expected O(log n).
  bool SetWeight(double key, double weight);

  // Draws `s` independent weighted samples from elements with keys in
  // [lo, hi], appending the sampled KEYS to `out`. Returns false when the
  // range is empty. Expected O((1 + s) log n).
  bool Query(double lo, double hi, size_t s, Rng* rng,
             std::vector<double>* out) const;

  // Total weight of keys in [lo, hi]. Expected O(log n).
  double RangeWeight(double lo, double hi) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  size_t MemoryBytes() const { return nodes_.capacity() * sizeof(Node); }

 private:
  static constexpr uint32_t kNull = ~uint32_t{0};

  struct Node {
    double key = 0.0;
    double weight = 0.0;          // this element's weight
    double subtree_weight = 0.0;  // total weight below (incl. self)
    uint64_t priority = 0;
    uint32_t left = kNull;
    uint32_t right = kNull;
  };

  void Pull(uint32_t v);
  // Splits `v` into (< key) and (>= key) when `before` is true, or
  // (<= key) and (> key) otherwise.
  void Split(uint32_t v, double key, bool before, uint32_t* lo_out,
             uint32_t* hi_out);
  uint32_t Merge(uint32_t a, uint32_t b);
  uint32_t NewNode(double key, double weight);
  void FreeNode(uint32_t v);

  // Samples one leaf... (one NODE) from the subtree of v proportionally
  // to weight. Expected O(depth).
  double SampleSubtree(uint32_t v, Rng* rng) const;

  mutable Rng priority_rng_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> free_list_;
  uint32_t root_ = kNull;
  size_t size_ = 0;
};

}  // namespace iqs

#endif  // IQS_RANGE_DYNAMIC_RANGE_SAMPLER_H_
