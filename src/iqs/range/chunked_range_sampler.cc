#include "iqs/range/chunked_range_sampler.h"

#include <bit>
#include <cmath>

#include "iqs/cover/cover_executor.h"
#include "iqs/sampling/multinomial.h"

namespace iqs {

namespace {

// Group tags for the batched path: a query's cover is its q1/q2/q3 split
// (paper Figure 2) — partial-chunk spans drawn categorically, and the
// chunk-aligned middle served through the chunk-level Lemma-2 structure.
constexpr uint64_t kSpanGroup = 0;
constexpr uint64_t kMiddleGroup = 1;

}  // namespace

ChunkedRangeSampler::ChunkedRangeSampler(std::span<const double> keys,
                                         std::span<const double> weights,
                                         size_t chunk_size,
                                         ThreadPool* build_pool)
    : RangeSampler(keys), weights_(weights.begin(), weights.end()) {
  IQS_CHECK(keys.size() == weights.size());
  const size_t n = weights_.size();
  chunk_size_ = chunk_size != 0
                    ? chunk_size
                    : std::max<size_t>(1, std::bit_width(n) - 1);  // ~log2 n
  const size_t g = (n + chunk_size_ - 1) / chunk_size_;

  std::vector<double> chunk_weights(g, 0.0);
  chunk_alias_.resize(g);
  // Each chunk's alias table and weight sum depend only on that chunk's
  // slice, so the builds parallelize with no cross-chunk state and the
  // result is bit-identical however they are scheduled.
  auto build_chunks = [&](size_t first, size_t last) {
    std::vector<double> scratch;
    for (size_t c = first; c < last; ++c) {
      const size_t lo = ChunkStart(c);
      const size_t hi = ChunkEnd(c);
      scratch.assign(weights_.begin() + static_cast<ptrdiff_t>(lo),
                     weights_.begin() + static_cast<ptrdiff_t>(hi) + 1);
      chunk_alias_[c].Build(scratch);
      for (double w : scratch) chunk_weights[c] += w;
    }
  };
  // Below ~4 chunks per worker the fan-out costs more than it hides.
  if (build_pool != nullptr && build_pool->num_threads() > 1 &&
      g >= build_pool->num_threads() * 4) {
    ParallelForShards(build_pool, g,
                      [&](size_t first, size_t last, size_t /*worker*/) {
                        build_chunks(first, last);
                      });
  } else {
    build_chunks(0, g);
  }

  chunk_weight_prefix_.assign(g + 1, 0.0);
  for (size_t c = 0; c < g; ++c) {
    chunk_weight_prefix_[c + 1] = chunk_weight_prefix_[c] + chunk_weights[c];
  }

  chunk_level_ = std::make_unique<AugRangeSampler>(chunk_weights);
}

void ChunkedRangeSampler::SampleFromSpan(size_t lo, size_t hi, size_t count,
                                         Rng* rng,
                                         std::vector<size_t>* out) const {
  if (count == 0) return;
  // Spans are at most one chunk (Θ(log n) elements); thread-local scratch
  // keeps the per-query alias build allocation-free in steady state.
  thread_local std::vector<double> span_weights;
  thread_local AliasTable table;
  span_weights.assign(weights_.begin() + static_cast<ptrdiff_t>(lo),
                      weights_.begin() + static_cast<ptrdiff_t>(hi) + 1);
  table.Build(span_weights);
  for (size_t i = 0; i < count; ++i) out->push_back(lo + table.Sample(rng));
}

void ChunkedRangeSampler::QueryPositions(size_t a, size_t b, size_t s,
                                         Rng* rng,
                                         std::vector<size_t>* out) const {
  IQS_CHECK(a <= b && b < n());
  if (s == 0) return;
  out->reserve(out->size() + s);

  const size_t ca = a / chunk_size_;
  const size_t cb = b / chunk_size_;
  if (ca == cb) {
    SampleFromSpan(a, b, s, rng, out);
    return;
  }

  // q1 = [a, end of chunk ca], q2 = full chunks in between, q3 = [start of
  // chunk cb, b] (paper Figure 2).
  const size_t q1_hi = ChunkEnd(ca);
  const size_t q3_lo = ChunkStart(cb);
  double w1 = 0.0;
  for (size_t i = a; i <= q1_hi; ++i) w1 += weights_[i];
  double w3 = 0.0;
  for (size_t i = q3_lo; i <= b; ++i) w3 += weights_[i];
  const bool has_middle = cb > ca + 1;
  const double w2 =
      has_middle ? chunk_weight_prefix_[cb] - chunk_weight_prefix_[ca + 1]
                 : 0.0;

  const double part_weights[3] = {w1, w2, w3};
  const std::vector<uint32_t> counts = MultinomialSplit(part_weights, s, rng);

  SampleFromSpan(a, q1_hi, counts[0], rng, out);
  SampleFromSpan(q3_lo, b, counts[2], rng, out);

  if (counts[1] > 0) {
    IQS_DCHECK(has_middle);
    // Chunk-aligned query: draw chunk ids from the Lemma-2 structure, then
    // one element from each drawn chunk's alias table — O(1) per sample.
    std::vector<size_t> chunk_draws;
    chunk_draws.reserve(counts[1]);
    chunk_level_->QueryPositions(ca + 1, cb - 1, counts[1], rng,
                                 &chunk_draws);
    for (size_t chunk : chunk_draws) {
      out->push_back(ChunkStart(chunk) + chunk_alias_[chunk].Sample(rng));
    }
  }
}

void ChunkedRangeSampler::QueryPositionsBatch(
    std::span<const PositionQuery> queries, Rng* rng, ScratchArena* arena,
    const BatchOptions& opts, std::vector<size_t>* out) const {
  // Cover enumeration only — each query's q1/q2/q3 split becomes 1-3 plan
  // groups — with the CoverExecutor owning the multinomial splits and
  // output layout. The draw backend serves partial-chunk spans by
  // inverse-CDF block draws, and gathers the chunk-aligned middles of ALL
  // queries into a single chunk-level batched call (itself the Lemma-2
  // cross-batch pipeline) followed by one blocked
  // prefetch-then-read pass over every middle draw of the batch: each
  // element draw chains table header -> urn line -> sample, and issuing
  // each stage's loads for a whole block lets the misses of a dependent
  // stage overlap across draws instead of serializing per draw.
  thread_local CoverPlan plan;
  plan.Clear();
  for (const PositionQuery& q : queries) {
    plan.BeginQuery(q.s);
    if (q.s == 0) continue;
    IQS_DCHECK(q.a <= q.b && q.b < n());
    const size_t ca = q.a / chunk_size_;
    const size_t cb = q.b / chunk_size_;
    if (ca == cb) {
      double w = 0.0;
      for (size_t i = q.a; i <= q.b; ++i) w += weights_[i];
      plan.AddGroup(q.a, q.b, w, kSpanGroup);
      continue;
    }
    const size_t q1_hi = ChunkEnd(ca);
    const size_t q3_lo = ChunkStart(cb);
    double w1 = 0.0;
    for (size_t i = q.a; i <= q1_hi; ++i) w1 += weights_[i];
    plan.AddGroup(q.a, q1_hi, w1, kSpanGroup);
    if (cb > ca + 1) {
      const double w2 =
          chunk_weight_prefix_[cb] - chunk_weight_prefix_[ca + 1];
      plan.AddGroup(ChunkStart(ca + 1), ChunkEnd(cb - 1), w2, kMiddleGroup);
    }
    double w3 = 0.0;
    for (size_t i = q3_lo; i <= q.b; ++i) w3 += weights_[i];
    plan.AddGroup(q3_lo, q.b, w3, kSpanGroup);
  }

  if (!opts.sequential()) {
    // Parallel mode: each query draws its own spans and (single) middle
    // group under its substream — the middle goes through the chunk-level
    // structure's sequential path with the query's rng, then the same
    // blocked alias pass, so randomness consumption is a pure function of
    // the query.
    CoverExecutor::ExecuteParallel(
        plan, rng, arena, opts,
        [this](const CoverPlan& p, const CoverSplit& split,
               std::span<size_t> dst, size_t q, size_t /*worker*/, Rng* qrng,
               ScratchArena* wa) {
          const std::span<const CoverGroup> groups = p.groups();
          const std::span<const double> weights(weights_);
          for (size_t g = p.first_group(q); g < p.end_group(q); ++g) {
            const size_t count = split.counts[g];
            if (count == 0) continue;
            if (groups[g].tag == kSpanGroup) {
              CategoricalSampleScratch(
                  weights.subspan(groups[g].lo,
                                  groups[g].hi - groups[g].lo + 1),
                  qrng, wa, groups[g].lo,
                  dst.subspan(split.offsets[g], count));
              continue;
            }
            const PositionQuery middle{groups[g].lo / chunk_size_,
                                       groups[g].hi / chunk_size_, count};
            thread_local std::vector<size_t> chunk_draws;
            chunk_draws.clear();
            chunk_level_->QueryPositionsBatch(
                std::span<const PositionQuery>(&middle, 1), qrng, wa,
                &chunk_draws);
            IQS_DCHECK(chunk_draws.size() == count);
            const std::span<const AliasTable*> tables =
                wa->Alloc<const AliasTable*>(count);
            const std::span<size_t> bases = wa->Alloc<size_t>(count);
            for (size_t i = 0; i < count; ++i) {
              const size_t chunk = chunk_draws[i];
              tables[i] = &chunk_alias_[chunk];
              __builtin_prefetch(tables[i]);
              bases[i] = ChunkStart(chunk);
            }
            AliasTable::SampleTargets(tables, bases, qrng,
                                      dst.subspan(split.offsets[g], count));
          }
        },
        out);
    return;
  }

  CoverExecutor::Execute(
      plan, rng, arena, opts,
      [&](const CoverPlan& p, const CoverSplit& split, std::span<size_t> dst) {
        const std::span<const CoverGroup> groups = p.groups();
        const std::span<const double> weights(weights_);

        // Partial-chunk spans: block inverse-CDF draws straight into the
        // group's slice. Also count the middle work for the second stage.
        size_t num_middles = 0;
        size_t middle_total = 0;
        for (size_t g = 0; g < groups.size(); ++g) {
          if (split.counts[g] == 0) continue;
          if (groups[g].tag == kMiddleGroup) {
            ++num_middles;
            middle_total += split.counts[g];
            continue;
          }
          CategoricalSampleScratch(
              weights.subspan(groups[g].lo, groups[g].hi - groups[g].lo + 1),
              rng, arena, groups[g].lo,
              dst.subspan(split.offsets[g], split.counts[g]));
        }
        if (middle_total == 0) return;

        // Chunk-aligned middles of the whole batch in one chunk-level
        // batched call; middle_dst[i] remembers where draw i lands.
        const std::span<PositionQuery> middle_queries =
            arena->Alloc<PositionQuery>(num_middles);
        const std::span<size_t> middle_dst =
            arena->Alloc<size_t>(middle_total);
        size_t mq = 0;
        size_t md = 0;
        for (size_t g = 0; g < groups.size(); ++g) {
          if (groups[g].tag != kMiddleGroup || split.counts[g] == 0) continue;
          middle_queries[mq++] =
              PositionQuery{groups[g].lo / chunk_size_,
                            groups[g].hi / chunk_size_,
                            static_cast<size_t>(split.counts[g])};
          for (uint32_t k = 0; k < split.counts[g]; ++k) {
            middle_dst[md++] = split.offsets[g] + k;
          }
        }
        IQS_DCHECK(md == middle_total);
        thread_local std::vector<size_t> chunk_draws;
        chunk_draws.clear();
        chunk_level_->QueryPositionsBatch(middle_queries, rng, arena,
                                          &chunk_draws);
        IQS_DCHECK(chunk_draws.size() == middle_total);

        // Draw contiguously through the shared pipeline, then scatter to
        // each middle draw's slot (the scatter consumes no randomness).
        const std::span<const AliasTable*> tables =
            arena->Alloc<const AliasTable*>(middle_total);
        const std::span<size_t> bases = arena->Alloc<size_t>(middle_total);
        for (size_t i = 0; i < middle_total; ++i) {
          const size_t chunk = chunk_draws[i];
          tables[i] = &chunk_alias_[chunk];
          __builtin_prefetch(tables[i]);
          bases[i] = ChunkStart(chunk);
        }
        const std::span<size_t> middle_out =
            arena->Alloc<size_t>(middle_total);
        AliasTable::SampleTargets(tables, bases, rng, middle_out);
        for (size_t i = 0; i < middle_total; ++i) {
          dst[middle_dst[i]] = middle_out[i];
        }
      },
      out);
}

size_t ChunkedRangeSampler::MemoryBytes() const {
  size_t bytes = keys_.capacity() * sizeof(double) +
                 weights_.capacity() * sizeof(double) +
                 chunk_alias_.capacity() * sizeof(AliasTable) +
                 chunk_weight_prefix_.capacity() * sizeof(double);
  for (const AliasTable& table : chunk_alias_) bytes += table.MemoryBytes();
  if (chunk_level_ != nullptr) bytes += chunk_level_->MemoryBytes();
  return bytes;
}

}  // namespace iqs
