#include "iqs/range/chunked_range_sampler.h"

#include <bit>
#include <cmath>

#include "iqs/sampling/multinomial.h"

namespace iqs {

ChunkedRangeSampler::ChunkedRangeSampler(std::span<const double> keys,
                                         std::span<const double> weights,
                                         size_t chunk_size)
    : RangeSampler(keys), weights_(weights.begin(), weights.end()) {
  IQS_CHECK(keys.size() == weights.size());
  const size_t n = weights_.size();
  chunk_size_ = chunk_size != 0
                    ? chunk_size
                    : std::max<size_t>(1, std::bit_width(n) - 1);  // ~log2 n
  const size_t g = (n + chunk_size_ - 1) / chunk_size_;

  std::vector<double> chunk_weights(g, 0.0);
  chunk_alias_.resize(g);
  std::vector<double> scratch;
  for (size_t c = 0; c < g; ++c) {
    const size_t lo = ChunkStart(c);
    const size_t hi = ChunkEnd(c);
    scratch.assign(weights_.begin() + static_cast<ptrdiff_t>(lo),
                   weights_.begin() + static_cast<ptrdiff_t>(hi) + 1);
    chunk_alias_[c].Build(scratch);
    for (double w : scratch) chunk_weights[c] += w;
  }

  chunk_weight_prefix_.assign(g + 1, 0.0);
  for (size_t c = 0; c < g; ++c) {
    chunk_weight_prefix_[c + 1] = chunk_weight_prefix_[c] + chunk_weights[c];
  }

  chunk_level_ = std::make_unique<AugRangeSampler>(chunk_weights);
}

void ChunkedRangeSampler::SampleFromSpan(size_t lo, size_t hi, size_t count,
                                         Rng* rng,
                                         std::vector<size_t>* out) const {
  if (count == 0) return;
  std::vector<double> span_weights(
      weights_.begin() + static_cast<ptrdiff_t>(lo),
      weights_.begin() + static_cast<ptrdiff_t>(hi) + 1);
  AliasTable table(span_weights);
  for (size_t i = 0; i < count; ++i) out->push_back(lo + table.Sample(rng));
}

void ChunkedRangeSampler::QueryPositions(size_t a, size_t b, size_t s,
                                         Rng* rng,
                                         std::vector<size_t>* out) const {
  IQS_CHECK(a <= b && b < n());
  if (s == 0) return;
  out->reserve(out->size() + s);

  const size_t ca = a / chunk_size_;
  const size_t cb = b / chunk_size_;
  if (ca == cb) {
    SampleFromSpan(a, b, s, rng, out);
    return;
  }

  // q1 = [a, end of chunk ca], q2 = full chunks in between, q3 = [start of
  // chunk cb, b] (paper Figure 2).
  const size_t q1_hi = ChunkEnd(ca);
  const size_t q3_lo = ChunkStart(cb);
  double w1 = 0.0;
  for (size_t i = a; i <= q1_hi; ++i) w1 += weights_[i];
  double w3 = 0.0;
  for (size_t i = q3_lo; i <= b; ++i) w3 += weights_[i];
  const bool has_middle = cb > ca + 1;
  const double w2 =
      has_middle ? chunk_weight_prefix_[cb] - chunk_weight_prefix_[ca + 1]
                 : 0.0;

  const double part_weights[3] = {w1, w2, w3};
  const std::vector<uint32_t> counts = MultinomialSplit(part_weights, s, rng);

  SampleFromSpan(a, q1_hi, counts[0], rng, out);
  SampleFromSpan(q3_lo, b, counts[2], rng, out);

  if (counts[1] > 0) {
    IQS_DCHECK(has_middle);
    // Chunk-aligned query: draw chunk ids from the Lemma-2 structure, then
    // one element from each drawn chunk's alias table — O(1) per sample.
    std::vector<size_t> chunk_draws;
    chunk_draws.reserve(counts[1]);
    chunk_level_->QueryPositions(ca + 1, cb - 1, counts[1], rng,
                                 &chunk_draws);
    for (size_t chunk : chunk_draws) {
      out->push_back(ChunkStart(chunk) + chunk_alias_[chunk].Sample(rng));
    }
  }
}

size_t ChunkedRangeSampler::MemoryBytes() const {
  size_t bytes = keys_.capacity() * sizeof(double) +
                 weights_.capacity() * sizeof(double) +
                 chunk_alias_.capacity() * sizeof(AliasTable) +
                 chunk_weight_prefix_.capacity() * sizeof(double);
  for (const AliasTable& table : chunk_alias_) bytes += table.MemoryBytes();
  if (chunk_level_ != nullptr) bytes += chunk_level_->MemoryBytes();
  return bytes;
}

}  // namespace iqs
