#include "iqs/range/chunked_range_sampler.h"

#include <bit>
#include <cmath>

#include "iqs/sampling/multinomial.h"

namespace iqs {

ChunkedRangeSampler::ChunkedRangeSampler(std::span<const double> keys,
                                         std::span<const double> weights,
                                         size_t chunk_size)
    : RangeSampler(keys), weights_(weights.begin(), weights.end()) {
  IQS_CHECK(keys.size() == weights.size());
  const size_t n = weights_.size();
  chunk_size_ = chunk_size != 0
                    ? chunk_size
                    : std::max<size_t>(1, std::bit_width(n) - 1);  // ~log2 n
  const size_t g = (n + chunk_size_ - 1) / chunk_size_;

  std::vector<double> chunk_weights(g, 0.0);
  chunk_alias_.resize(g);
  std::vector<double> scratch;
  for (size_t c = 0; c < g; ++c) {
    const size_t lo = ChunkStart(c);
    const size_t hi = ChunkEnd(c);
    scratch.assign(weights_.begin() + static_cast<ptrdiff_t>(lo),
                   weights_.begin() + static_cast<ptrdiff_t>(hi) + 1);
    chunk_alias_[c].Build(scratch);
    for (double w : scratch) chunk_weights[c] += w;
  }

  chunk_weight_prefix_.assign(g + 1, 0.0);
  for (size_t c = 0; c < g; ++c) {
    chunk_weight_prefix_[c + 1] = chunk_weight_prefix_[c] + chunk_weights[c];
  }

  chunk_level_ = std::make_unique<AugRangeSampler>(chunk_weights);
}

void ChunkedRangeSampler::SampleFromSpan(size_t lo, size_t hi, size_t count,
                                         Rng* rng,
                                         std::vector<size_t>* out) const {
  if (count == 0) return;
  // Spans are at most one chunk (Θ(log n) elements); thread-local scratch
  // keeps the per-query alias build allocation-free in steady state.
  thread_local std::vector<double> span_weights;
  thread_local AliasTable table;
  span_weights.assign(weights_.begin() + static_cast<ptrdiff_t>(lo),
                      weights_.begin() + static_cast<ptrdiff_t>(hi) + 1);
  table.Build(span_weights);
  for (size_t i = 0; i < count; ++i) out->push_back(lo + table.Sample(rng));
}

void ChunkedRangeSampler::QueryPositions(size_t a, size_t b, size_t s,
                                         Rng* rng,
                                         std::vector<size_t>* out) const {
  IQS_CHECK(a <= b && b < n());
  if (s == 0) return;
  out->reserve(out->size() + s);

  const size_t ca = a / chunk_size_;
  const size_t cb = b / chunk_size_;
  if (ca == cb) {
    SampleFromSpan(a, b, s, rng, out);
    return;
  }

  // q1 = [a, end of chunk ca], q2 = full chunks in between, q3 = [start of
  // chunk cb, b] (paper Figure 2).
  const size_t q1_hi = ChunkEnd(ca);
  const size_t q3_lo = ChunkStart(cb);
  double w1 = 0.0;
  for (size_t i = a; i <= q1_hi; ++i) w1 += weights_[i];
  double w3 = 0.0;
  for (size_t i = q3_lo; i <= b; ++i) w3 += weights_[i];
  const bool has_middle = cb > ca + 1;
  const double w2 =
      has_middle ? chunk_weight_prefix_[cb] - chunk_weight_prefix_[ca + 1]
                 : 0.0;

  const double part_weights[3] = {w1, w2, w3};
  const std::vector<uint32_t> counts = MultinomialSplit(part_weights, s, rng);

  SampleFromSpan(a, q1_hi, counts[0], rng, out);
  SampleFromSpan(q3_lo, b, counts[2], rng, out);

  if (counts[1] > 0) {
    IQS_DCHECK(has_middle);
    // Chunk-aligned query: draw chunk ids from the Lemma-2 structure, then
    // one element from each drawn chunk's alias table — O(1) per sample.
    std::vector<size_t> chunk_draws;
    chunk_draws.reserve(counts[1]);
    chunk_level_->QueryPositions(ca + 1, cb - 1, counts[1], rng,
                                 &chunk_draws);
    for (size_t chunk : chunk_draws) {
      out->push_back(ChunkStart(chunk) + chunk_alias_[chunk].Sample(rng));
    }
  }
}

void ChunkedRangeSampler::QueryPositionsBatch(
    std::span<const PositionQuery> queries, Rng* rng, ScratchArena* arena,
    std::vector<size_t>* out) const {
  // Mirrors QueryPositions' q1/q2/q3 split (paper Figure 2) but with all
  // temporaries in the arena, inverse-CDF block draws for the partial
  // chunks, and the chunk-level Lemma-2 structure invoked through its own
  // batched path.
  thread_local std::vector<size_t> chunk_draws;
  for (const PositionQuery& q : queries) {
    if (q.s == 0) continue;
    IQS_CHECK(q.a <= q.b && q.b < n());
    const size_t base = out->size();
    out->resize(base + q.s);
    const std::span<size_t> dst = std::span<size_t>(*out).subspan(base, q.s);

    const size_t ca = q.a / chunk_size_;
    const size_t cb = q.b / chunk_size_;
    const std::span<const double> weights(weights_);
    if (ca == cb) {
      CategoricalSampleScratch(weights.subspan(q.a, q.b - q.a + 1), rng,
                               arena, q.a, dst);
      continue;
    }

    const size_t q1_hi = ChunkEnd(ca);
    const size_t q3_lo = ChunkStart(cb);
    double w1 = 0.0;
    for (size_t i = q.a; i <= q1_hi; ++i) w1 += weights_[i];
    double w3 = 0.0;
    for (size_t i = q3_lo; i <= q.b; ++i) w3 += weights_[i];
    const bool has_middle = cb > ca + 1;
    const double w2 =
        has_middle ? chunk_weight_prefix_[cb] - chunk_weight_prefix_[ca + 1]
                   : 0.0;

    const double part_weights[3] = {w1, w2, w3};
    const std::span<uint32_t> counts = arena->Alloc<uint32_t>(3);
    MultinomialSplitScratch(part_weights, q.s, rng, arena, counts);

    size_t written = 0;
    CategoricalSampleScratch(weights.subspan(q.a, q1_hi - q.a + 1), rng,
                             arena, q.a, dst.subspan(written, counts[0]));
    written += counts[0];
    CategoricalSampleScratch(weights.subspan(q3_lo, q.b - q3_lo + 1), rng,
                             arena, q3_lo, dst.subspan(written, counts[2]));
    written += counts[2];

    if (counts[1] > 0) {
      IQS_DCHECK(has_middle);
      chunk_draws.clear();
      const PositionQuery middle{ca + 1, cb - 1, counts[1]};
      chunk_level_->QueryPositionsBatch({&middle, 1}, rng, arena,
                                        &chunk_draws);
      // Three-pass prefetch pipeline over the drawn chunks: every element
      // draw chains table header -> urn line -> sample, and each pass
      // issues its loads for all draws so the misses of a dependent stage
      // overlap across draws instead of serializing per draw.
      const size_t m = chunk_draws.size();
      const std::span<uint64_t> urn_idx = arena->Alloc<uint64_t>(m);
      const std::span<double> coins = arena->Alloc<double>(m);
      rng->FillDoubles(coins);
      for (size_t i = 0; i < m; ++i) {
        __builtin_prefetch(&chunk_alias_[chunk_draws[i]]);
      }
      for (size_t i = 0; i < m; ++i) {
        const AliasTable& table = chunk_alias_[chunk_draws[i]];
        urn_idx[i] = rng->Below(table.size());
        table.PrefetchUrn(urn_idx[i]);
      }
      for (size_t i = 0; i < m; ++i) {
        const size_t chunk = chunk_draws[i];
        dst[written++] = ChunkStart(chunk) +
                         chunk_alias_[chunk].SampleAt(urn_idx[i], coins[i]);
      }
    }
    IQS_DCHECK(written == q.s);
  }
}

size_t ChunkedRangeSampler::MemoryBytes() const {
  size_t bytes = keys_.capacity() * sizeof(double) +
                 weights_.capacity() * sizeof(double) +
                 chunk_alias_.capacity() * sizeof(AliasTable) +
                 chunk_weight_prefix_.capacity() * sizeof(double);
  for (const AliasTable& table : chunk_alias_) bytes += table.MemoryBytes();
  if (chunk_level_ != nullptr) bytes += chunk_level_->MemoryBytes();
  return bytes;
}

}  // namespace iqs
