// Technique 1 — alias augmentation (paper Section 4.1, Lemma 2).
//
// Every node u of the BST stores an alias table over S(u), the elements in
// its subtree. Tables at one tree level total O(n) space, so the whole
// structure takes O(n log n). A query finds the canonical cover
// (O(log n)), splits the sample budget across cover nodes with an on-the-
// fly alias table (O(log n + s)), and then draws each sample from the
// cover node's prebuilt table in O(1) — total O(log n + s).

#ifndef IQS_RANGE_AUG_RANGE_SAMPLER_H_
#define IQS_RANGE_AUG_RANGE_SAMPLER_H_

#include <span>
#include <vector>

#include "iqs/alias/alias_table.h"
#include "iqs/range/range_sampler.h"
#include "iqs/range/static_bst.h"

namespace iqs {

class CoverPlan;
struct CoverSplit;

class AugRangeSampler : public RangeSampler {
 public:
  AugRangeSampler(std::span<const double> keys,
                  std::span<const double> weights);

  // Convenience constructor for position-indexed data (keys 0, 1, ..., n-1)
  // — used by Theorem 3's chunk-level structure, where "keys" are chunk
  // numbers.
  explicit AugRangeSampler(std::span<const double> weights);

  void QueryPositions(size_t a, size_t b, size_t s, Rng* rng,
                      std::vector<size_t>* out) const override;

  // Batched fast path: enumerates canonical covers into a CoverPlan for
  // the shared CoverExecutor; the draw backend pipelines prefetched urn
  // loads from the prebuilt per-node alias tables — across the whole
  // batch when sequential, per query under substreams when parallel.
  using RangeSampler::QueryPositionsBatch;
  void QueryPositionsBatch(std::span<const PositionQuery> queries, Rng* rng,
                           ScratchArena* arena, const BatchOptions& opts,
                           std::vector<size_t>* out) const override;

  size_t MemoryBytes() const override;

  std::string_view name() const override { return "alias-augmented"; }

 private:
  void BuildNodeAliases(std::span<const double> weights);

  // Blocked prefetch-then-read alias pipeline over the plan groups
  // [first_group, end_group), writing dst[split.offsets[g] ..) for each.
  // `dst` is the batch-flat destination; scratch comes from `arena`.
  void DrawGroupedAlias(const CoverPlan& plan, const CoverSplit& split,
                        size_t first_group, size_t end_group,
                        std::span<size_t> dst, Rng* rng,
                        ScratchArena* arena) const;

  StaticBst tree_;
  // node_alias_[u] samples a position offset within [RangeLo(u),
  // RangeHi(u)]; leaves have empty tables (they are their own sample).
  std::vector<AliasTable> node_alias_;
};

}  // namespace iqs

#endif  // IQS_RANGE_AUG_RANGE_SAMPLER_H_
