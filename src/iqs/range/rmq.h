// Sparse-table range-minimum queries over an array of distinct uint32
// values: O(n log n) preprocessing, O(1) per query. Substrate of the
// *dependent* query-sampling baseline (paper Section 2), which repeatedly
// extracts the minimum-rank elements of a range.

#ifndef IQS_RANGE_RMQ_H_
#define IQS_RANGE_RMQ_H_

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "iqs/util/check.h"

namespace iqs {

class SparseTableRmq {
 public:
  SparseTableRmq() = default;

  explicit SparseTableRmq(std::span<const uint32_t> values)
      : values_(values.begin(), values.end()) {
    const size_t n = values_.size();
    IQS_CHECK(n > 0);
    const size_t levels = static_cast<size_t>(std::bit_width(n));
    table_.resize(levels);
    table_[0].resize(n);
    for (size_t i = 0; i < n; ++i) table_[0][i] = static_cast<uint32_t>(i);
    for (size_t k = 1; k < levels; ++k) {
      const size_t len = size_t{1} << k;
      table_[k].resize(n - len + 1);
      for (size_t i = 0; i + len <= n; ++i) {
        const uint32_t left = table_[k - 1][i];
        const uint32_t right = table_[k - 1][i + len / 2];
        table_[k][i] = values_[left] <= values_[right] ? left : right;
      }
    }
  }

  // Index of the minimum value in positions [a, b] inclusive. O(1).
  size_t ArgMin(size_t a, size_t b) const {
    IQS_DCHECK(a <= b && b < values_.size());
    const size_t k = static_cast<size_t>(std::bit_width(b - a + 1)) - 1;
    const uint32_t left = table_[k][a];
    const uint32_t right = table_[k][b + 1 - (size_t{1} << k)];
    return values_[left] <= values_[right] ? left : right;
  }

  uint32_t ValueAt(size_t i) const { return values_[i]; }
  size_t size() const { return values_.size(); }

  size_t MemoryBytes() const {
    size_t bytes = values_.capacity() * sizeof(uint32_t);
    for (const auto& level : table_) bytes += level.capacity() * sizeof(uint32_t);
    return bytes;
  }

 private:
  std::vector<uint32_t> values_;
  std::vector<std::vector<uint32_t>> table_;
};

}  // namespace iqs

#endif  // IQS_RANGE_RMQ_H_
