#include "iqs/range/range_sampler.h"

#include <algorithm>

#include "iqs/util/telemetry.h"

namespace iqs {

RangeSampler::RangeSampler(std::span<const double> keys)
    : keys_(keys.begin(), keys.end()) {
  IQS_CHECK(!keys_.empty());
  for (size_t i = 1; i < keys_.size(); ++i) {
    // iqs-lint: allow(check-in-loop) -- cold build-path input validation
    IQS_CHECK(keys_[i - 1] < keys_[i]);
  }
}

bool RangeSampler::ResolveInterval(double lo, double hi, size_t* a,
                                   size_t* b) const {
  if (lo > hi) return false;
  const auto first = std::lower_bound(keys_.begin(), keys_.end(), lo);
  if (first == keys_.end() || *first > hi) return false;
  const auto last = std::upper_bound(first, keys_.end(), hi);
  *a = static_cast<size_t>(first - keys_.begin());
  *b = static_cast<size_t>(last - keys_.begin()) - 1;
  return true;
}

bool RangeSampler::Query(double lo, double hi, size_t s, Rng* rng,
                         std::vector<size_t>* out) const {
  size_t a = 0;
  size_t b = 0;
  if (!ResolveInterval(lo, hi, &a, &b)) return false;
  QueryPositions(a, b, s, rng, out);
  return true;
}

void RangeSampler::QueryBatch(std::span<const BatchQuery> queries, Rng* rng,
                              ScratchArena* arena,
                              BatchResult* result) const {
  QueryBatch(queries, rng, arena, BatchOptions{}, result);
}

void RangeSampler::QueryBatch(std::span<const BatchQuery> queries, Rng* rng,
                              ScratchArena* arena, const BatchOptions& opts,
                              BatchResult* result) const {
  const uint64_t start_ns = opts.telemetry != nullptr ? TelemetryNowNs() : 0;
  result->Clear();
  arena->Reset();
  const size_t q = queries.size();
  result->resolved.resize(q);
  result->offsets.resize(q + 1);

  // Resolve all intervals up front; unresolved queries keep s == 0 so the
  // position pass below can stay branch-light.
  const std::span<PositionQuery> resolved = arena->Alloc<PositionQuery>(q);
  size_t total_samples = 0;
  for (size_t i = 0; i < q; ++i) {
    PositionQuery& pq = resolved[i];
    const bool ok =
        ResolveInterval(queries[i].lo, queries[i].hi, &pq.a, &pq.b);
    result->resolved[i] = ok ? 1 : 0;
    pq.s = ok ? queries[i].s : 0;
    result->offsets[i] = total_samples;
    total_samples += pq.s;
  }
  result->offsets[q] = total_samples;

  result->positions.clear();
  result->positions.reserve(total_samples);
  QueryPositionsBatch(resolved, rng, arena, opts, &result->positions);
  IQS_CHECK(result->positions.size() == total_samples);
  if (opts.telemetry != nullptr) {
    opts.telemetry->shard(0)->latency.Record(TelemetryNowNs() - start_ns);
  }
}

void RangeSampler::QueryPositionsBatch(std::span<const PositionQuery> queries,
                                       Rng* rng, ScratchArena* arena,
                                       const BatchOptions& opts,
                                       std::vector<size_t>* out) const {
  if (opts.sequential()) {
    for (const PositionQuery& q : queries) {
      if (q.s == 0) continue;
      QueryPositions(q.a, q.b, q.s, rng, out);
    }
    return;
  }

  // Generic parallel fallback: whole requests are the shardable unit,
  // each served by QueryPositions under its own substream (see
  // BatchOptions for the determinism argument). Subclasses with grouped
  // kernels override this with a CoverExecutor::ExecuteParallel pipeline.
  ScopedPool pool(opts);
  const Rng base(rng->Next64());
  const size_t nq = queries.size();
  const std::span<size_t> offsets = arena->Alloc<size_t>(nq + 1);
  size_t total = 0;
  for (size_t i = 0; i < nq; ++i) {
    offsets[i] = total;
    total += queries[i].s;
  }
  offsets[nq] = total;
  if (total == 0) return;
  const size_t base_size = out->size();
  out->resize(base_size + total);
  const std::span<size_t> dst =
      std::span<size_t>(*out).subspan(base_size, total);
  ParallelForShards(
      pool.get(), nq, [&](size_t first, size_t last, size_t /*worker*/) {
        thread_local std::vector<size_t> buf;
        for (size_t q = first; q < last; ++q) {
          if (queries[q].s == 0) continue;
          Rng qrng = base.ForkStream(q);
          buf.clear();
          QueryPositions(queries[q].a, queries[q].b, queries[q].s, &qrng,
                         &buf);
          IQS_DCHECK(buf.size() == queries[q].s);
          std::copy(buf.begin(), buf.end(), dst.begin() + offsets[q]);
        }
      });
}

}  // namespace iqs
