#include "iqs/range/range_sampler.h"

#include <algorithm>

namespace iqs {

RangeSampler::RangeSampler(std::span<const double> keys)
    : keys_(keys.begin(), keys.end()) {
  IQS_CHECK(!keys_.empty());
  for (size_t i = 1; i < keys_.size(); ++i) {
    IQS_CHECK(keys_[i - 1] < keys_[i]);
  }
}

bool RangeSampler::ResolveInterval(double lo, double hi, size_t* a,
                                   size_t* b) const {
  if (lo > hi) return false;
  const auto first = std::lower_bound(keys_.begin(), keys_.end(), lo);
  if (first == keys_.end() || *first > hi) return false;
  const auto last = std::upper_bound(first, keys_.end(), hi);
  *a = static_cast<size_t>(first - keys_.begin());
  *b = static_cast<size_t>(last - keys_.begin()) - 1;
  return true;
}

bool RangeSampler::Query(double lo, double hi, size_t s, Rng* rng,
                         std::vector<size_t>* out) const {
  size_t a = 0;
  size_t b = 0;
  if (!ResolveInterval(lo, hi, &a, &b)) return false;
  QueryPositions(a, b, s, rng, out);
  return true;
}

}  // namespace iqs
