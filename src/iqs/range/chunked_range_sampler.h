// Theorem 3 — the linear-space weighted range sampler (paper Section 4.2).
//
// The positions are cut into g = Θ(n / log n) chunks of Θ(log n) elements.
// Three components give O(n) total space:
//   * a Lemma-2 structure (AugRangeSampler) over the g chunk weights:
//     O(g log g) = O(n),
//   * one alias table per chunk: O(n),
//   * chunk-weight prefix sums standing in for the paper's range-sum BST
//     (the data is static, so prefix sums give the same O(log n)-or-better
//     range sums in O(g) space).
//
// A query [a, b] splits into a partial head chunk q1, a chunk-aligned
// middle q2, and a partial tail chunk q3 (paper Figure 2). The sample
// budget is divided Multinomial(s; w1, w2, w3); q1/q3 are materialized by
// scanning O(log n) elements, and q2 samples come from the chunk-level
// structure followed by an O(1) per-sample draw from the chosen chunk's
// alias table. Total: O(log n + s) time, O(n) space.

#ifndef IQS_RANGE_CHUNKED_RANGE_SAMPLER_H_
#define IQS_RANGE_CHUNKED_RANGE_SAMPLER_H_

#include <memory>
#include <span>
#include <vector>

#include "iqs/alias/alias_table.h"
#include "iqs/range/aug_range_sampler.h"
#include "iqs/range/range_sampler.h"

namespace iqs {

class ChunkedRangeSampler : public RangeSampler {
 public:
  // `chunk_size` of 0 picks the default Θ(log n). A non-null `build_pool`
  // runs the per-chunk alias-table builds as one ParallelFor over the
  // pool's workers (chunks are independent, so the built structure is
  // bit-identical to a sequential build); the pool is used only inside
  // the constructor and must not be mid-ParallelFor. This is how the
  // versioned samplers rebuild components off the serving threads.
  ChunkedRangeSampler(std::span<const double> keys,
                      std::span<const double> weights, size_t chunk_size = 0,
                      ThreadPool* build_pool = nullptr);

  void QueryPositions(size_t a, size_t b, size_t s, Rng* rng,
                      std::vector<size_t>* out) const override;

  // Batched fast path: enumerates each query's q1/q2/q3 split into a
  // CoverPlan served by the shared CoverExecutor — block draws for the
  // partial chunks, and chunk-aligned middles served through the
  // chunk-level structure plus a blocked alias pipeline (gathered across
  // the whole batch when sequential, per query under substreams when
  // parallel).
  using RangeSampler::QueryPositionsBatch;
  void QueryPositionsBatch(std::span<const PositionQuery> queries, Rng* rng,
                           ScratchArena* arena, const BatchOptions& opts,
                           std::vector<size_t>* out) const override;

  size_t MemoryBytes() const override;

  std::string_view name() const override { return "chunked-linear-space"; }

  size_t chunk_size() const { return chunk_size_; }
  size_t num_chunks() const { return chunk_alias_.size(); }

 private:
  size_t ChunkStart(size_t chunk) const { return chunk * chunk_size_; }
  size_t ChunkEnd(size_t chunk) const {  // inclusive
    return std::min(ChunkStart(chunk) + chunk_size_, weights_.size()) - 1;
  }

  // Draws `count` weighted samples from positions [lo, hi] (all within one
  // chunk) by scanning, appending to `out`.
  void SampleFromSpan(size_t lo, size_t hi, size_t count, Rng* rng,
                      std::vector<size_t>* out) const;

  std::vector<double> weights_;
  size_t chunk_size_ = 0;
  std::vector<AliasTable> chunk_alias_;
  std::vector<double> chunk_weight_prefix_;  // prefix_[i] = sum of chunks < i
  std::unique_ptr<AugRangeSampler> chunk_level_;
};

}  // namespace iqs

#endif  // IQS_RANGE_CHUNKED_RANGE_SAMPLER_H_
