#include "iqs/range/aug_range_sampler.h"

#include <algorithm>
#include <numeric>

#include "iqs/cover/cover_executor.h"
#include "iqs/sampling/multinomial.h"

namespace iqs {

namespace {

std::vector<double> PositionKeys(size_t n) {
  std::vector<double> keys(n);
  std::iota(keys.begin(), keys.end(), 0.0);
  return keys;
}

}  // namespace

AugRangeSampler::AugRangeSampler(std::span<const double> keys,
                                 std::span<const double> weights)
    : RangeSampler(keys), tree_(weights) {
  IQS_CHECK(keys.size() == weights.size());
  BuildNodeAliases(weights);
}

AugRangeSampler::AugRangeSampler(std::span<const double> weights)
    : RangeSampler(PositionKeys(weights.size())), tree_(weights) {
  BuildNodeAliases(weights);
}

void AugRangeSampler::BuildNodeAliases(std::span<const double> weights) {
  node_alias_.resize(tree_.num_nodes());
  std::vector<double> scratch;
  for (StaticBst::NodeId u = 0; u < tree_.num_nodes(); ++u) {
    if (tree_.IsLeaf(u)) continue;
    const size_t lo = tree_.RangeLo(u);
    const size_t hi = tree_.RangeHi(u);
    scratch.assign(weights.begin() + static_cast<ptrdiff_t>(lo),
                   weights.begin() + static_cast<ptrdiff_t>(hi) + 1);
    node_alias_[u].Build(scratch);
  }
}

void AugRangeSampler::QueryPositions(size_t a, size_t b, size_t s, Rng* rng,
                                     std::vector<size_t>* out) const {
  IQS_CHECK(a <= b && b < n());
  if (s == 0) return;
  // Per-call temporaries hoisted into thread-local scratch (see
  // BstRangeSampler::QueryPositions).
  thread_local std::vector<StaticBst::NodeId> cover;
  thread_local std::vector<double> cover_weights;
  cover.clear();
  tree_.CanonicalCover(a, b, &cover);

  cover_weights.clear();
  cover_weights.reserve(cover.size());
  for (StaticBst::NodeId u : cover) {
    cover_weights.push_back(tree_.NodeWeight(u));
  }
  const std::vector<uint32_t> counts = MultinomialSplit(cover_weights, s, rng);

  out->reserve(out->size() + s);
  for (size_t i = 0; i < cover.size(); ++i) {
    const StaticBst::NodeId u = cover[i];
    const size_t lo = tree_.RangeLo(u);
    if (tree_.IsLeaf(u)) {
      for (uint32_t k = 0; k < counts[i]; ++k) out->push_back(lo);
      continue;
    }
    const AliasTable& table = node_alias_[u];
    for (uint32_t k = 0; k < counts[i]; ++k) {
      out->push_back(lo + table.Sample(rng));
    }
  }
}

void AugRangeSampler::DrawGroupedAlias(const CoverPlan& plan,
                                       const CoverSplit& split,
                                       size_t first_group, size_t end_group,
                                       std::span<size_t> dst, Rng* rng,
                                       ScratchArena* arena) const {
  const size_t base = split.offsets[first_group];
  const size_t total = split.offsets[end_group] - base;
  if (total == 0) return;
  const std::span<const AliasTable*> tables =
      arena->Alloc<const AliasTable*>(total);
  const std::span<size_t> bases = arena->Alloc<size_t>(total);
  const std::span<const CoverGroup> groups = plan.groups();
  size_t d = 0;
  for (size_t g = first_group; g < end_group; ++g) {
    const auto u = static_cast<StaticBst::NodeId>(groups[g].tag);
    const AliasTable* table = tree_.IsLeaf(u) ? nullptr : &node_alias_[u];
    const size_t lo = groups[g].lo;
    for (uint32_t k = 0; k < split.counts[g]; ++k) {
      tables[d] = table;
      bases[d] = lo;
      ++d;
    }
  }
  IQS_DCHECK(d == total);

  AliasTable::SampleTargets(tables, bases, rng, dst.subspan(base, total));
}

void AugRangeSampler::QueryPositionsBatch(
    std::span<const PositionQuery> queries, Rng* rng, ScratchArena* arena,
    const BatchOptions& opts, std::vector<size_t>* out) const {
  // Cover enumeration only; the CoverExecutor owns the multinomial split
  // and output layout. The draw backend flattens the per-node urn picks
  // of EVERY query into one cross-batch pipeline: a planning pass records
  // (table, base) per draw, then fixed-size blocks run urn-index
  // generation + prefetch for the whole block before any urn is read. The
  // urn loads — the only cache misses on this path — therefore overlap
  // across all queries of the batch instead of serializing inside each
  // cover node's little group.
  thread_local CoverPlan plan;
  plan.Clear();
  const size_t max_cover = tree_.MaxCoverSize();
  const std::span<StaticBst::NodeId> cover =
      arena->Alloc<StaticBst::NodeId>(max_cover);
  for (const PositionQuery& q : queries) {
    plan.BeginQuery(q.s);
    if (q.s == 0) continue;
    IQS_DCHECK(q.a <= q.b && q.b < n());
    const size_t t = tree_.CanonicalCover(q.a, q.b, cover);
    for (size_t i = 0; i < t; ++i) {
      const StaticBst::NodeId u = cover[i];
      plan.AddGroup(tree_.RangeLo(u), tree_.RangeHi(u), tree_.NodeWeight(u),
                    u);
    }
  }

  if (!opts.sequential()) {
    // Parallel mode: the same blocked urn pipeline, run per query under
    // the query's substream (the pipeline is then shorter — one query's
    // draws — but shards of queries still overlap their misses).
    CoverExecutor::ExecuteParallel(
        plan, rng, arena, opts,
        [this](const CoverPlan& p, const CoverSplit& split,
               std::span<size_t> dst, size_t q, size_t /*worker*/, Rng* qrng,
               ScratchArena* wa) {
          DrawGroupedAlias(p, split, p.first_group(q), p.end_group(q), dst,
                           qrng, wa);
        },
        out);
    return;
  }

  CoverExecutor::Execute(
      plan, rng, arena, opts,
      [&](const CoverPlan& p, const CoverSplit& split, std::span<size_t> dst) {
        DrawGroupedAlias(p, split, 0, p.num_groups(), dst, rng, arena);
      },
      out);
}

size_t AugRangeSampler::MemoryBytes() const {
  size_t bytes = tree_.MemoryBytes() + keys_.capacity() * sizeof(double) +
                 node_alias_.capacity() * sizeof(AliasTable);
  for (const AliasTable& table : node_alias_) bytes += table.MemoryBytes();
  return bytes;
}

}  // namespace iqs
