#include "iqs/range/aug_range_sampler.h"

#include <numeric>

#include "iqs/sampling/multinomial.h"

namespace iqs {

namespace {

std::vector<double> PositionKeys(size_t n) {
  std::vector<double> keys(n);
  std::iota(keys.begin(), keys.end(), 0.0);
  return keys;
}

}  // namespace

AugRangeSampler::AugRangeSampler(std::span<const double> keys,
                                 std::span<const double> weights)
    : RangeSampler(keys), tree_(weights) {
  IQS_CHECK(keys.size() == weights.size());
  BuildNodeAliases(weights);
}

AugRangeSampler::AugRangeSampler(std::span<const double> weights)
    : RangeSampler(PositionKeys(weights.size())), tree_(weights) {
  BuildNodeAliases(weights);
}

void AugRangeSampler::BuildNodeAliases(std::span<const double> weights) {
  node_alias_.resize(tree_.num_nodes());
  std::vector<double> scratch;
  for (StaticBst::NodeId u = 0; u < tree_.num_nodes(); ++u) {
    if (tree_.IsLeaf(u)) continue;
    const size_t lo = tree_.RangeLo(u);
    const size_t hi = tree_.RangeHi(u);
    scratch.assign(weights.begin() + static_cast<ptrdiff_t>(lo),
                   weights.begin() + static_cast<ptrdiff_t>(hi) + 1);
    node_alias_[u].Build(scratch);
  }
}

void AugRangeSampler::QueryPositions(size_t a, size_t b, size_t s, Rng* rng,
                                     std::vector<size_t>* out) const {
  IQS_CHECK(a <= b && b < n());
  if (s == 0) return;
  std::vector<StaticBst::NodeId> cover;
  tree_.CanonicalCover(a, b, &cover);

  std::vector<double> cover_weights;
  cover_weights.reserve(cover.size());
  for (StaticBst::NodeId u : cover) {
    cover_weights.push_back(tree_.NodeWeight(u));
  }
  const std::vector<uint32_t> counts = MultinomialSplit(cover_weights, s, rng);

  out->reserve(out->size() + s);
  for (size_t i = 0; i < cover.size(); ++i) {
    const StaticBst::NodeId u = cover[i];
    const size_t lo = tree_.RangeLo(u);
    if (tree_.IsLeaf(u)) {
      for (uint32_t k = 0; k < counts[i]; ++k) out->push_back(lo);
      continue;
    }
    const AliasTable& table = node_alias_[u];
    for (uint32_t k = 0; k < counts[i]; ++k) {
      out->push_back(lo + table.Sample(rng));
    }
  }
}

size_t AugRangeSampler::MemoryBytes() const {
  size_t bytes = tree_.MemoryBytes() + keys_.capacity() * sizeof(double) +
                 node_alias_.capacity() * sizeof(AliasTable);
  for (const AliasTable& table : node_alias_) bytes += table.MemoryBytes();
  return bytes;
}

}  // namespace iqs
