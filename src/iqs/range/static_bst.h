// Leaf-oriented balanced binary search tree with subtree weights and
// canonical-node decomposition (paper Section 3.2 and Figure 1).
//
// The tree follows the paper's conventions: height O(log n), one leaf per
// element (identified by its position 0..n-1 in sorted key order), every
// internal node has exactly two children, and each node stores the total
// weight w(u) of the leaves below it. For any position range [a, b] the
// tree yields a canonical cover: O(log n) nodes with disjoint subtrees
// whose leaves are exactly positions a..b.
//
// StaticBst is deliberately key-agnostic — it works on positions. Mapping
// real-valued query intervals to position ranges is the job of
// RangeSampler (range_sampler.h), so the same tree drives element-level
// structures and the chunk-level structure of Theorem 3 alike.

#ifndef IQS_RANGE_STATIC_BST_H_
#define IQS_RANGE_STATIC_BST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "iqs/util/check.h"
#include "iqs/util/rng.h"

namespace iqs {

class StaticBst {
 public:
  using NodeId = uint32_t;
  static constexpr NodeId kNullNode = ~NodeId{0};

  StaticBst() = default;

  // Builds the tree over `weights[i] > 0` for leaf positions i. O(n).
  explicit StaticBst(std::span<const double> weights);

  size_t num_leaves() const { return num_leaves_; }
  size_t num_nodes() const { return nodes_.size(); }
  NodeId root() const { return 0; }

  bool IsLeaf(NodeId u) const { return nodes_[u].left == kNullNode; }
  double NodeWeight(NodeId u) const { return nodes_[u].weight; }
  NodeId LeftChild(NodeId u) const { return nodes_[u].left; }
  NodeId RightChild(NodeId u) const { return nodes_[u].right; }
  // Leaf positions below u form the inclusive range [RangeLo, RangeHi].
  size_t RangeLo(NodeId u) const { return nodes_[u].lo; }
  size_t RangeHi(NodeId u) const { return nodes_[u].hi; }
  // For a leaf, the element position it stores.
  size_t LeafPosition(NodeId u) const {
    IQS_DCHECK(IsLeaf(u));
    return nodes_[u].lo;
  }
  // Leaf id for position p (usable as a subtree-query argument).
  NodeId LeafForPosition(size_t p) const { return leaf_of_position_[p]; }

  // Appends the canonical cover of positions [a, b] (inclusive) to `out`:
  // maximal nodes entirely inside the range. |cover| = O(log n);
  // O(log n) time. a <= b < n required.
  void CanonicalCover(size_t a, size_t b, std::vector<NodeId>* out) const;

  // Tree sampling (paper Section 3.2): walks down from u, at each internal
  // node choosing a child proportional to its subtree weight. Returns the
  // sampled leaf position. O(height of subtree), fresh randomness per call.
  size_t SampleLeaf(NodeId u, Rng* rng) const;

  size_t Height() const;

  size_t MemoryBytes() const {
    return nodes_.capacity() * sizeof(Node) +
           leaf_of_position_.capacity() * sizeof(NodeId);
  }

 private:
  struct Node {
    double weight = 0.0;
    NodeId left = kNullNode;
    NodeId right = kNullNode;
    uint32_t lo = 0;
    uint32_t hi = 0;
  };

  NodeId BuildRange(std::span<const double> weights, size_t lo, size_t hi);

  std::vector<Node> nodes_;
  std::vector<NodeId> leaf_of_position_;
  size_t num_leaves_ = 0;
};

}  // namespace iqs

#endif  // IQS_RANGE_STATIC_BST_H_
