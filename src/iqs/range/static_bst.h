// Leaf-oriented balanced binary search tree with subtree weights and
// canonical-node decomposition (paper Section 3.2 and Figure 1).
//
// The tree follows the paper's conventions: height O(log n), one leaf per
// element (identified by its position 0..n-1 in sorted key order), every
// internal node has exactly two children, and each node stores the total
// weight w(u) of the leaves below it. For any position range [a, b] the
// tree yields a canonical cover: O(log n) nodes with disjoint subtrees
// whose leaves are exactly positions a..b.
//
// Layout: nodes are stored in BFS (level) order, so the root is node 0,
// siblings are adjacent, and a node's two children share a cache line more
// often than not. Because children are allocated in pairs, only the left
// child id is stored — the right child is always left + 1 — which packs a
// node into 24 bytes (weight, left, lo, hi). Root-to-leaf descents
// therefore touch a prefix of the array at the top (always cached) and one
// line per level only near the bottom, where SampleLeaves() hides the
// misses with software prefetch across a batch of concurrent descents.
//
// StaticBst is deliberately key-agnostic — it works on positions. Mapping
// real-valued query intervals to position ranges is the job of
// RangeSampler (range_sampler.h), so the same tree drives element-level
// structures and the chunk-level structure of Theorem 3 alike.

#ifndef IQS_RANGE_STATIC_BST_H_
#define IQS_RANGE_STATIC_BST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "iqs/util/check.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace iqs {

class StaticBst {
 public:
  using NodeId = uint32_t;
  static constexpr NodeId kNullNode = ~NodeId{0};

  StaticBst() = default;

  // Builds the tree over `weights[i] > 0` for leaf positions i. O(n).
  explicit StaticBst(std::span<const double> weights);

  size_t num_leaves() const { return num_leaves_; }
  size_t num_nodes() const { return nodes_.size(); }
  NodeId root() const { return 0; }

  bool IsLeaf(NodeId u) const { return nodes_[u].left == kNullNode; }
  double NodeWeight(NodeId u) const { return nodes_[u].weight; }
  NodeId LeftChild(NodeId u) const { return nodes_[u].left; }
  // Children are allocated as adjacent siblings (BFS layout).
  NodeId RightChild(NodeId u) const {
    const NodeId left = nodes_[u].left;
    return left == kNullNode ? kNullNode : left + 1;
  }
  // Leaf positions below u form the inclusive range [RangeLo, RangeHi].
  size_t RangeLo(NodeId u) const { return nodes_[u].lo; }
  size_t RangeHi(NodeId u) const { return nodes_[u].hi; }
  // For a leaf, the element position it stores.
  size_t LeafPosition(NodeId u) const {
    IQS_DCHECK(IsLeaf(u));
    return nodes_[u].lo;
  }
  // Leaf id for position p (usable as a subtree-query argument).
  NodeId LeafForPosition(size_t p) const { return leaf_of_position_[p]; }

  // Appends the canonical cover of positions [a, b] (inclusive) to `out`:
  // maximal nodes entirely inside the range. |cover| = O(log n);
  // O(log n) time. a <= b < n required.
  void CanonicalCover(size_t a, size_t b, std::vector<NodeId>* out) const;

  // Allocation-free variant: writes the cover into `out` (which must have
  // room for at least MaxCoverSize() nodes) and returns the cover size.
  size_t CanonicalCover(size_t a, size_t b, std::span<NodeId> out) const;

  // Upper bound on any canonical cover's size: two nodes per level.
  size_t MaxCoverSize() const { return 2 * Height() + 2; }

  // Tree sampling (paper Section 3.2): walks down from u, at each internal
  // node choosing a child proportional to its subtree weight. Returns the
  // sampled leaf position. O(height of subtree), fresh randomness per call.
  size_t SampleLeaf(NodeId u, Rng* rng) const;

  // Batched tree sampling: draws out.size() independent leaves below `u`
  // with the same per-leaf distribution as SampleLeaf, writing sampled
  // positions to `out`. The descents run level-synchronously — one pass
  // over all pending lanes per tree level — consuming block randomness
  // (Rng::FillDoubles) and prefetching each lane's next node one level
  // ahead, so the per-level node loads of different lanes overlap instead
  // of serializing on cache misses. Scratch comes from `arena` (caller
  // retains it across calls; this function does not Reset() it).
  void SampleLeaves(NodeId u, Rng* rng, ScratchArena* arena,
                    std::span<size_t> out) const;

  // Generalized grouped descent: each entry of `lanes` holds a start node
  // and is replaced, in place, by the id of a leaf sampled from that
  // node's subtree (per-lane law identical to SampleLeaf). Lanes are
  // independent, so a caller can line up every requested sample of a whole
  // query batch — thousands of lanes — and let their node loads miss the
  // cache concurrently; this is the deepest source of memory-level
  // parallelism on the batched serving path. Returns the number of
  // lane-level descent steps taken (the node loads that dominate the 1-d
  // hot path), which callers feed into QueryStats::nodes_visited.
  //
  // Under a SIMD backend (simd/dispatch.h) each lane chunk descends
  // breadth-synchronously in vector registers — weight/child gathers and
  // the left/right select all in-lane, one Rng word per chunk as the lane
  // seed. Same per-lane law (chi-squared in simd_kernels_test); the
  // scalar backend keeps the bit-stable blocked loop.
  size_t DescendToLeaves(std::span<NodeId> lanes, Rng* rng,
                         ScratchArena* arena) const;

  size_t Height() const;

  size_t MemoryBytes() const {
    return nodes_.capacity() * sizeof(Node) +
           leaf_of_position_.capacity() * sizeof(NodeId);
  }

 private:
  // 24 bytes: BFS layout makes `right` redundant (== left + 1).
  struct Node {
    double weight = 0.0;
    NodeId left = kNullNode;
    uint32_t lo = 0;
    uint32_t hi = 0;
  };
  static_assert(sizeof(Node) == 24, "descent loads stay within 24 bytes");

  std::vector<Node> nodes_;
  std::vector<NodeId> leaf_of_position_;
  size_t num_leaves_ = 0;
};

}  // namespace iqs

#endif  // IQS_RANGE_STATIC_BST_H_
