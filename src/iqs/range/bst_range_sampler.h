// Weighted range sampling by plain tree sampling (paper Section 3.2).
//
// O(n) space. A query finds the O(log n) canonical nodes of the range,
// draws each sample by first picking a canonical node proportional to its
// subtree weight and then walking down the tree (tree sampling), so the
// query costs O((1 + s) log n). Sections 4.1/4.2 improve this to
// O(log n + s); this structure is kept both as the pedagogical baseline
// and as the comparison point in bench_range_sampling (E3).

#ifndef IQS_RANGE_BST_RANGE_SAMPLER_H_
#define IQS_RANGE_BST_RANGE_SAMPLER_H_

#include <span>
#include <vector>

#include "iqs/range/range_sampler.h"
#include "iqs/range/static_bst.h"

namespace iqs {

class BstRangeSampler : public RangeSampler {
 public:
  // `keys` strictly increasing; `weights` positive, same length.
  BstRangeSampler(std::span<const double> keys,
                  std::span<const double> weights);

  void QueryPositions(size_t a, size_t b, size_t s, Rng* rng,
                      std::vector<size_t>* out) const override;

  // Batched fast path: enumerates canonical covers into a CoverPlan and
  // serves them through the shared CoverExecutor, with grouped
  // (level-synchronous, prefetched) subtree descents as the draw backend —
  // batch-wide when sequential, per query under substreams when parallel.
  using RangeSampler::QueryPositionsBatch;
  void QueryPositionsBatch(std::span<const PositionQuery> queries, Rng* rng,
                           ScratchArena* arena, const BatchOptions& opts,
                           std::vector<size_t>* out) const override;

  size_t MemoryBytes() const override {
    return tree_.MemoryBytes() + keys_.capacity() * sizeof(double);
  }

  std::string_view name() const override { return "bst-tree-sampling"; }

  const StaticBst& tree() const { return tree_; }

 private:
  StaticBst tree_;
};

}  // namespace iqs

#endif  // IQS_RANGE_BST_RANGE_SAMPLER_H_
